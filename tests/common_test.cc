// Unit tests for src/common: Status/Result, RNG, string utils, timers,
// table printer.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <thread>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace vblock {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad probability");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad probability");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad probability");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, DeadlineExceededFactory) {
  Status s = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: too slow");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ConstructingFromOkStatusBecomesError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------------- RNG --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int differing = 0;
  for (int i = 0; i < 100; ++i) differing += (a() != b());
  EXPECT_GT(differing, 90);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(9);
  const int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, MixSeedSeparatesStreams) {
  // Streams i and i+1 from the same base must differ.
  EXPECT_NE(MixSeed(1, 0), MixSeed(1, 1));
  EXPECT_NE(MixSeed(1, 0), MixSeed(2, 0));
}

TEST(RngTest, SplitMix64KnownVector) {
  // Reference: first output of SplitMix64 with state 0 is 0xE220A8397B1DCDAF.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64Next(state), 0xE220A8397B1DCDAFULL);
}

// ---------------------------------------------------------------- String --

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtilTest, SplitFields) {
  auto fields = SplitFields("1\t2  3,4");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "1");
  EXPECT_EQ(fields[3], "4");
  EXPECT_TRUE(SplitFields("   ").empty());
}

TEST(StringUtilTest, CommentLines) {
  EXPECT_TRUE(IsCommentLine("# snap header"));
  EXPECT_TRUE(IsCommentLine("  % matrix market"));
  EXPECT_TRUE(IsCommentLine(""));
  EXPECT_TRUE(IsCommentLine("   "));
  EXPECT_FALSE(IsCommentLine("0 1"));
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("  7 ", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(ParseDouble("1e-3", &v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringUtilTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.5e-6 * 3), "1.5us");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(600), "10.0min");
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.ElapsedSeconds(), 0.015);
  EXPECT_LT(t.ElapsedSeconds(), 5.0);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 0.010);
}

TEST(DeadlineTest, NoBudgetNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline d(0.01);
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(d.Expired());
}

// --------------------------------------------------------- TablePrinter --

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinterTest, HandlesRaggedRows) {
  TablePrinter t({"a", "b"});
  t.AddRow({"only-one"});
  t.AddRow({"1", "2", "3-extra"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("only-one"), std::string::npos);
  EXPECT_NE(out.find("3-extra"), std::string::npos);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, SubmitRunsEveryTaskOnAWorker) {
  ThreadPool pool(3);  // 2 background workers
  EXPECT_EQ(pool.num_workers(), 2u);
  std::atomic<int> count{0};
  std::promise<void> all_done;
  constexpr int kTasks = 50;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, QueueDepthReportsUnstartedTasks) {
  ThreadPool pool(2);  // one worker
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  pool.Submit([&, opened] {
    started.set_value();
    opened.wait();
  });
  started.get_future().wait();  // worker is now parked inside task 1
  pool.Submit([] {});
  pool.Submit([] {});
  EXPECT_EQ(pool.QueueDepth(), 2u);  // running task not counted
  gate.set_value();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.Submit([&, opened] {
      opened.wait();
      count.fetch_add(1);
    });
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
    gate.set_value();
    // Destruction must execute all 11 tasks before joining.
  }
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPoolTest, SubmitRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 0u);
  int count = 0;
  pool.Submit([&] { ++count; });  // inline: done when Submit returns
  EXPECT_EQ(count, 1);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, ParallelForStillWorksAlongsideSubmit) {
  ThreadPool pool(4);
  std::atomic<int> task_count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] { task_count.fetch_add(1); });
  }
  std::vector<uint32_t> touched(100, 0);
  pool.ParallelFor(100, [&](uint32_t, uint32_t begin, uint32_t end) {
    for (uint32_t i = begin; i < end; ++i) touched[i] += 1;
  });
  for (uint32_t v : touched) EXPECT_EQ(v, 1u);
  // Drain the submitted tasks before the pool dies (assert they all ran).
  std::promise<void> done;
  pool.Submit([&] { done.set_value(); });
  done.get_future().wait();
  EXPECT_EQ(task_count.load(), 8);
}

}  // namespace
}  // namespace vblock
