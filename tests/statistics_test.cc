// Tests for RunningStats / confidence intervals and the Theorem-5 sample-
// size calculator.

#include <gtest/gtest.h>

#include <cmath>

#include "cascade/statistics.h"
#include "common/rng.h"
#include "core/sample_size.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.standard_error(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble() * 10;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // copy
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SpreadCiTest, DeterministicGraphHasZeroWidth) {
  Graph g = testing::PathGraph(6, 1.0);
  auto est = EstimateSpreadWithCi(g, {0}, 500, 3);
  EXPECT_DOUBLE_EQ(est.mean, 6.0);
  EXPECT_DOUBLE_EQ(est.ci95_half_width, 0.0);
}

TEST(SpreadCiTest, CiCoversTrueSpread) {
  // E({v1},G)=7.66 on the toy graph; the 95% CI from 20k rounds must cover
  // it (this is a probabilistic statement, but with a fixed seed it is a
  // deterministic regression test).
  Graph g = testing::PaperFigure1Graph();
  auto est = EstimateSpreadWithCi(g, {testing::kV1}, 20000, 11);
  EXPECT_GT(est.ci95_half_width, 0.0);
  EXPECT_NEAR(est.mean, 7.66, est.ci95_half_width);
  EXPECT_LT(est.ci95_half_width, 0.05);
}

TEST(SpreadCiTest, WidthShrinksAsSqrtRounds) {
  Graph g = testing::PaperFigure1Graph();
  auto small = EstimateSpreadWithCi(g, {testing::kV1}, 1000, 5);
  auto large = EstimateSpreadWithCi(g, {testing::kV1}, 100000, 5);
  EXPECT_NEAR(small.ci95_half_width / large.ci95_half_width, 10.0, 3.0);
}

// --------------------------------------------------------- sample size --

TEST(SampleSizeTest, MatchesFormula) {
  EstimationGuarantee g;
  g.epsilon = 0.1;
  g.l = 1.0;
  g.opt_lower_bound = 1.0;
  const VertexId n = 1000;
  const double expected = 1.0 * 2.1 * 1000.0 * std::log(1000.0) / 0.01;
  EXPECT_EQ(RequiredSampleCount(n, g),
            static_cast<uint64_t>(std::ceil(expected)));
}

TEST(SampleSizeTest, MonotoneInParameters) {
  EstimationGuarantee base;
  base.epsilon = 0.2;
  base.l = 1.0;
  base.opt_lower_bound = 5.0;
  const uint64_t theta = RequiredSampleCount(500, base);

  EstimationGuarantee tighter = base;
  tighter.epsilon = 0.1;
  EXPECT_GT(RequiredSampleCount(500, tighter), theta);

  EstimationGuarantee safer = base;
  safer.l = 2.0;
  EXPECT_GT(RequiredSampleCount(500, safer), theta);

  EstimationGuarantee easier = base;
  easier.opt_lower_bound = 50.0;
  EXPECT_LT(RequiredSampleCount(500, easier), theta);

  EXPECT_GT(RequiredSampleCount(5000, base), theta);
}

TEST(SampleSizeTest, EpsilonInverseIsConsistent) {
  // GuaranteedEpsilon(θ(ε)) ≈ ε.
  EstimationGuarantee g;
  g.epsilon = 0.15;
  g.l = 1.5;
  g.opt_lower_bound = 3.0;
  const VertexId n = 2000;
  const uint64_t theta = RequiredSampleCount(n, g);
  const double eps = GuaranteedEpsilon(n, theta, g.l, g.opt_lower_bound);
  EXPECT_NEAR(eps, g.epsilon, 0.01);
}

TEST(SampleSizeTest, EpsilonDecreasesWithTheta) {
  const double e1 = GuaranteedEpsilon(1000, 10000, 1.0, 1.0);
  const double e2 = GuaranteedEpsilon(1000, 1000000, 1.0, 1.0);
  EXPECT_LT(e2, e1);
}

}  // namespace
}  // namespace vblock
