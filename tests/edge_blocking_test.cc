// Tests for the edge-blocking extension: the edge-split reduction, exact
// per-edge spread decreases on the paper's toy graph, and the greedy edge
// blocker.

#include <gtest/gtest.h>

#include "cascade/exact_spread.h"
#include "cascade/monte_carlo.h"
#include "core/edge_blocking.h"
#include "gen/generators.h"
#include "prob/probability_models.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

using testing::PaperFigure1Graph;

// Finds the index of edge (u,v) in the split instance's edge order.
size_t EdgeIndex(const EdgeSplitInstance& split, VertexId u, VertexId v) {
  for (size_t i = 0; i < split.edges.size(); ++i) {
    if (split.edges[i].source == u && split.edges[i].target == v) return i;
  }
  ADD_FAILURE() << "edge " << u << "->" << v << " not found";
  return 0;
}

TEST(SplitEdgesTest, StructureOfSplitGraph) {
  Graph g = PaperFigure1Graph();
  EdgeSplitInstance split = SplitEdges(g);
  EXPECT_EQ(split.first_aux, 9u);
  EXPECT_EQ(split.edges.size(), 10u);
  EXPECT_EQ(split.graph.NumVertices(), 19u);
  EXPECT_EQ(split.graph.NumEdges(), 20u);
  // Every auxiliary has exactly one in- and one out-edge; the out-edge has
  // probability 1.
  for (VertexId aux = split.first_aux; aux < split.graph.NumVertices();
       ++aux) {
    EXPECT_EQ(split.graph.InDegree(aux), 1u);
    EXPECT_EQ(split.graph.OutDegree(aux), 1u);
    EXPECT_DOUBLE_EQ(split.graph.OutProbabilities(aux)[0], 1.0);
    EXPECT_DOUBLE_EQ(split.weights[aux], 0.0);
  }
  for (VertexId v = 0; v < split.first_aux; ++v) {
    EXPECT_DOUBLE_EQ(split.weights[v], 1.0);
  }
}

TEST(SplitEdgesTest, SplitPreservesWeightedSpread) {
  // The weighted spread of the split graph (auxiliaries weight 0) equals
  // the original expected spread.
  Graph g = PaperFigure1Graph();
  EdgeSplitInstance split = SplitEdges(g);
  auto exact = ComputeSpreadDecreaseExactWeighted(split.graph, testing::kV1,
                                                  split.weights);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact->expected_spread, 7.66, 1e-12);
}

TEST(EdgeSpreadDecreaseTest, ExactValuesOnToyGraph) {
  // Derived from Example 1's activation probabilities:
  //   removing v1->v2: lose v2 only (v5 lives via v4)      -> 1.0
  //   removing v2->v5: nothing lost (v5 lives via v4)      -> 0.0
  //   removing v5->v8: P(v8) 0.6->0.2, P(v7) 0.06->0.02    -> 0.44
  //   removing v9->v8: P(v8) 0.6->0.5, P(v7) 0.06->0.05    -> 0.11
  //   removing v8->v7: lose P(v7)                          -> 0.06
  //   removing v5->v9: lose v9 + 0.1 of v8 + 0.01 of v7    -> 1.11
  Graph g = PaperFigure1Graph();
  EdgeSplitInstance split = SplitEdges(g);
  auto deltas = ComputeEdgeSpreadDecreaseExact(g, {testing::kV1});
  ASSERT_TRUE(deltas.ok());
  auto delta_of = [&](VertexId u, VertexId v) {
    return (*deltas)[EdgeIndex(split, u, v)];
  };
  EXPECT_NEAR(delta_of(testing::kV1, testing::kV2), 1.0, 1e-12);
  EXPECT_NEAR(delta_of(testing::kV2, testing::kV5), 0.0, 1e-12);
  EXPECT_NEAR(delta_of(testing::kV4, testing::kV5), 0.0, 1e-12);
  EXPECT_NEAR(delta_of(testing::kV5, testing::kV8), 0.44, 1e-12);
  EXPECT_NEAR(delta_of(testing::kV9, testing::kV8), 0.11, 1e-12);
  EXPECT_NEAR(delta_of(testing::kV8, testing::kV7), 0.06, 1e-12);
  EXPECT_NEAR(delta_of(testing::kV5, testing::kV9), 1.11, 1e-12);
  EXPECT_NEAR(delta_of(testing::kV5, testing::kV3), 1.0, 1e-12);
}

TEST(EdgeSpreadDecreaseTest, SampledConvergesToExact) {
  Graph g = PaperFigure1Graph();
  EdgeSplitInstance split = SplitEdges(g);
  SpreadDecreaseOptions opts;
  opts.theta = 150000;
  opts.seed = 3;
  auto sampled = ComputeEdgeSpreadDecrease(g, {testing::kV1}, opts);
  auto exact = ComputeEdgeSpreadDecreaseExact(g, {testing::kV1});
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(sampled.size(), exact->size());
  for (size_t i = 0; i < sampled.size(); ++i) {
    EXPECT_NEAR(sampled[i], (*exact)[i], 0.02)
        << split.edges[i].source << "->" << split.edges[i].target;
  }
}

TEST(EdgeSpreadDecreaseTest, EdgeDeltaMatchesGraphWithEdgeRemoved) {
  // Cross-check against first principles: Δ_edge = E(G) − E(G without e).
  Graph g = PaperFigure1Graph();
  EdgeSplitInstance split = SplitEdges(g);
  auto deltas = ComputeEdgeSpreadDecreaseExact(g, {testing::kV1});
  ASSERT_TRUE(deltas.ok());
  auto base = ComputeExactSpread(g, {testing::kV1});
  ASSERT_TRUE(base.ok());
  for (size_t i = 0; i < split.edges.size(); ++i) {
    Graph without = RemoveEdges(g, {split.edges[i]});
    auto spread = ComputeExactSpread(without, {testing::kV1});
    ASSERT_TRUE(spread.ok());
    EXPECT_NEAR((*deltas)[i], *base - *spread, 1e-9)
        << split.edges[i].source << "->" << split.edges[i].target;
  }
}

TEST(GreedyEdgeBlockingTest, FirstPickIsBestSingleEdge) {
  // On the toy graph the best single edge removal is v5->v9 (Δ = 1.11).
  Graph g = PaperFigure1Graph();
  EdgeBlockingOptions opts;
  opts.budget = 1;
  opts.theta = 30000;
  opts.seed = 9;
  auto result = GreedyEdgeBlocking(g, {testing::kV1}, opts);
  ASSERT_EQ(result.blocked_edges.size(), 1u);
  EXPECT_EQ(result.blocked_edges[0].source, testing::kV5);
  EXPECT_EQ(result.blocked_edges[0].target, testing::kV9);
}

TEST(GreedyEdgeBlockingTest, SpreadDropsMonotonically) {
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(200, 3, 5));
  std::vector<VertexId> seeds = {0, 1};
  EdgeBlockingOptions opts;
  opts.budget = 8;
  opts.theta = 2000;
  opts.seed = 5;
  auto result = GreedyEdgeBlocking(g, seeds, opts);
  EXPECT_EQ(result.blocked_edges.size(), 8u);
  // Evaluate cumulative prefixes: spread must be non-increasing.
  double prev = 1e18;
  for (size_t k = 0; k <= result.blocked_edges.size(); k += 4) {
    std::vector<Edge> prefix(result.blocked_edges.begin(),
                             result.blocked_edges.begin() +
                                 static_cast<ptrdiff_t>(k));
    Graph cut = RemoveEdges(g, prefix);
    MonteCarloOptions mc;
    mc.rounds = 20000;
    mc.seed = 11;
    double spread = EstimateSpread(cut, seeds, mc);
    EXPECT_LE(spread, prev + 0.1);
    prev = spread;
  }
}

TEST(GreedyEdgeBlockingTest, BudgetBeyondEdgeCountBlocksEverythingUseful) {
  Graph g = testing::PathGraph(4, 1.0);
  EdgeBlockingOptions opts;
  opts.budget = 100;
  opts.theta = 100;
  auto result = GreedyEdgeBlocking(g, {0}, opts);
  EXPECT_LE(result.blocked_edges.size(), 3u);
  // Removing the first path edge already isolates the seed; remaining
  // rounds pick zero-delta edges.
  Graph cut = RemoveEdges(g, result.blocked_edges);
  auto spread = ComputeExactSpread(cut, {0});
  ASSERT_TRUE(spread.ok());
  EXPECT_DOUBLE_EQ(*spread, 1.0);
}

TEST(GreedyEdgeBlockingTest, MultiSeedEdgeBlocking) {
  // Two seeds on a path: only the edges downstream of each seed matter.
  Graph g = testing::PathGraph(6, 1.0);
  EdgeBlockingOptions opts;
  opts.budget = 2;
  opts.theta = 200;
  opts.seed = 2;
  auto result = GreedyEdgeBlocking(g, {0, 3}, opts);
  ASSERT_EQ(result.blocked_edges.size(), 2u);
  Graph cut = RemoveEdges(g, result.blocked_edges);
  auto spread = ComputeExactSpread(cut, {0, 3});
  ASSERT_TRUE(spread.ok());
  // Best 2 removals: (0,1) and (3,4) -> only the seeds remain.
  EXPECT_DOUBLE_EQ(*spread, 2.0);
}

TEST(EdgeSpreadDecreaseTest, EdgeDeltaBoundedByTargetVertexDelta) {
  // Blocking vertex v removes every in-edge of v (and more), so for any
  // edge e = (u,v): Δ_edge(e) ≤ Δ_vertex(v). Exact check on random small
  // graphs.
  for (uint64_t seed : {3ull, 4ull, 5ull}) {
    Graph base = GenerateErdosRenyi(12, 24, seed);
    // Make a few edges probabilistic so worlds stay enumerable.
    GraphBuilder b;
    b.ReserveVertices(base.NumVertices());
    size_t i = 0;
    for (const Edge& e : base.CollectEdges()) {
      b.AddEdge(e.source, e.target, (i++ % 4 == 0) ? 0.5 : 1.0);
    }
    auto built = b.Build();
    ASSERT_TRUE(built.ok());
    Graph g = std::move(built.value());

    auto edge_deltas = ComputeEdgeSpreadDecreaseExact(g, {0});
    ASSERT_TRUE(edge_deltas.ok());
    auto vertex_deltas = ComputeSpreadDecreaseExact(g, 0);
    ASSERT_TRUE(vertex_deltas.ok());
    EdgeSplitInstance split = SplitEdges(g);
    for (size_t e = 0; e < split.edges.size(); ++e) {
      const VertexId target = split.edges[e].target;
      if (target == 0) continue;  // edges into the seed are irrelevant
      EXPECT_LE((*edge_deltas)[e], vertex_deltas->delta[target] + 1e-9)
          << "seed " << seed << " edge " << split.edges[e].source << "->"
          << target;
    }
  }
}

TEST(RemoveEdgesTest, RemovesExactlyTheGivenEdges) {
  Graph g = PaperFigure1Graph();
  auto edges = g.CollectEdges();
  Graph cut = RemoveEdges(g, {edges[0], edges[3]});
  EXPECT_EQ(cut.NumEdges(), g.NumEdges() - 2);
  EXPECT_EQ(cut.NumVertices(), g.NumVertices());
}

}  // namespace
}  // namespace vblock
