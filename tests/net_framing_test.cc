// Copyright (c) the vblock authors. Licensed under the MIT license.
//
// Framing stress: the canonical smoke session replayed through a real
// socket must produce a transcript byte-identical to the stdin REPL's
// (tools/smoke_expected.txt) no matter how the client segments its
// writes — one coalesced write, 1-byte chunks, or random split points.
// Also pins the TCP shutdown contract: EOF mid-line still executes the
// final command, and a drain lets in-flight work finish.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/rng.h"
#include "net/line_client.h"
#include "net/load_gen.h"
#include "net/tcp_server.h"
#include "service/protocol.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace vblock {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Removes the wall-clock / allocator-dependent tails, exactly like the CI
// smoke's sed pipeline: the STATS suffix from pool_bytes on, the traced
// SOLVE tail from trace_id on, and the sample value of every METRICS line
// (metric names and '#' headers stay — the exposition name set is pinned,
// its values are not).
std::string StripVolatile(const std::string& transcript) {
  std::string out;
  size_t start = 0;
  while (start <= transcript.size()) {
    const size_t end = transcript.find('\n', start);
    if (end == std::string::npos) {
      out.append(transcript, start, std::string::npos);
      break;
    }
    std::string line = transcript.substr(start, end - start);
    size_t cut = line.find(" pool_bytes=");
    if (cut == std::string::npos) cut = line.find(" trace_id=");
    if (cut != std::string::npos) line.erase(cut);
    if (line.rfind("vblock_", 0) == 0) {
      // "name{labels} value" → "name{labels}"; a '}' may contain a space
      // inside a label value, so cut at the LAST space.
      const size_t space = line.rfind(' ');
      if (space != std::string::npos) line.erase(space);
    }
    out += line;
    out += '\n';
    start = end + 1;
  }
  return out;
}

// One server instance per replay: the smoke session's STATS counters and
// EVICT GRAPH are stateful, so transcripts only reproduce from scratch.
struct ServerFixture {
  GraphRegistry registry;
  QueryService service;
  TcpServer server;
  std::thread thread;

  ServerFixture()
      : service(&registry, ServiceOptions{}),
        server(&registry, &service, TcpServerOptions{}) {
    const Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.message();
    thread = std::thread([this] { server.Run(); });
  }

  ~ServerFixture() {
    server.RequestDrain();
    thread.join();
  }
};

// Replays `script` with write sizes drawn from [min_chunk, max_chunk].
std::string ChunkedReplay(uint16_t port, const std::string& script,
                          size_t min_chunk, size_t max_chunk,
                          uint64_t seed) {
  Result<int> connected = ConnectTcp("127.0.0.1", port, 10.0);
  EXPECT_TRUE(connected.ok()) << connected.status().message();
  const int fd = *connected;
  timeval tv{60, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  Rng rng(seed);
  size_t offset = 0;
  while (offset < script.size()) {
    size_t chunk = min_chunk;
    if (max_chunk > min_chunk) {
      chunk += rng.NextBounded(max_chunk - min_chunk + 1);
    }
    if (chunk > script.size() - offset) chunk = script.size() - offset;
    size_t sent = 0;
    while (sent < chunk) {
      const ssize_t n = ::send(fd, script.data() + offset + sent,
                               chunk - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        ADD_FAILURE() << "send failed";
        ::close(fd);
        return "";
      }
      sent += static_cast<size_t>(n);
    }
    offset += chunk;
  }
  ::shutdown(fd, SHUT_WR);

  std::string transcript;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      transcript.append(buffer, static_cast<size_t>(n));
      continue;
    }
    EXPECT_EQ(n, 0) << "recv failed before server close";
    break;
  }
  ::close(fd);
  return transcript;
}

class SmokeFraming : public ::testing::Test {
 protected:
  void SetUp() override {
    script_ = ReadFileOrDie(std::string(VBLOCK_REPO_DIR) +
                            "/tools/smoke_session.txt");
    expected_ = ReadFileOrDie(std::string(VBLOCK_REPO_DIR) +
                              "/tools/smoke_expected.txt");
    ASSERT_FALSE(script_.empty());
    ASSERT_FALSE(expected_.empty());
  }

  std::string script_;
  std::string expected_;
};

TEST_F(SmokeFraming, OneCoalescedWrite) {
  ServerFixture fixture;
  Result<std::string> transcript =
      ReplayScript("127.0.0.1", fixture.server.port(), script_);
  ASSERT_TRUE(transcript.ok()) << transcript.status().message();
  EXPECT_EQ(StripVolatile(*transcript), expected_);
}

TEST_F(SmokeFraming, OneBytePerWrite) {
  ServerFixture fixture;
  const std::string transcript =
      ChunkedReplay(fixture.server.port(), script_, 1, 1, 1);
  EXPECT_EQ(StripVolatile(transcript), expected_);
}

TEST_F(SmokeFraming, RandomSplitPoints) {
  ServerFixture fixture;
  const std::string transcript =
      ChunkedReplay(fixture.server.port(), script_, 1, 23, 77);
  EXPECT_EQ(StripVolatile(transcript), expected_);
}

TEST(TcpShutdown, EofMidLineExecutesFinalCommand) {
  ServerFixture fixture;
  // "EVICT POOLS" with NO trailing newline: the reply must not be lost.
  const std::string transcript =
      ChunkedReplay(fixture.server.port(), "EVICT POOLS", 64, 64, 1);
  EXPECT_EQ(transcript, "OK evicted=0\n");
}

// Guarantees the Run() thread is drained and joined even when an ASSERT
// fails mid-test — a joinable std::thread destructor would otherwise
// std::terminate the whole binary. RequestDrain is idempotent, so the
// guard composes with an explicit drain/join inside the test body.
struct DrainGuard {
  TcpServer& server;
  std::thread& thread;
  ~DrainGuard() {
    server.RequestDrain();
    if (thread.joinable()) thread.join();
  }
};

TEST(TcpShutdown, DrainClosesIdleConnectionsAndRunReturnsZero) {
  GraphRegistry registry;
  QueryService service(&registry, ServiceOptions{});
  TcpServer server(&registry, &service, TcpServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  int run_rc = -1;
  std::thread thread([&] { run_rc = server.Run(); });
  DrainGuard guard{server, thread};

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<std::string> stats = client.Roundtrip("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rfind("OK graphs=0", 0), 0u) << *stats;

  server.RequestDrain();
  thread.join();
  EXPECT_EQ(run_rc, 0);
  // The server closed us out; the next read is a clean EOF.
  Result<std::string> after = client.ReadLine();
  EXPECT_FALSE(after.ok());
}

TEST(TcpShutdown, DrainLetsInFlightCommandFinish) {
  GraphRegistry registry;
  QueryService service(&registry, ServiceOptions{});
  // This test pins in-flight completion, not the force-close path, and
  // sanitizers slow the Monte-Carlo EVAL by an order of magnitude — a
  // long grace keeps the timer from closing the connection first.
  TcpServerOptions options;
  options.drain_grace_seconds = 120.0;
  TcpServer server(&registry, &service, options);
  ASSERT_TRUE(server.Start().ok());
  int run_rc = -1;
  std::thread thread([&] { run_rc = server.Run(); });
  DrainGuard guard{server, thread};

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client
                  .Roundtrip("LOAD g GEN EmailCore SCALE 0.1 SEED 7 "
                             "MODEL wc")
                  .ok());
  // A few hundred ms of Monte-Carlo: almost certainly still running when
  // the drain lands.
  ASSERT_TRUE(client
                  .WriteAll("EVAL g SEEDS 1,2,3 BLOCKERS - ROUNDS 400000 "
                            "SEED 5 SAMPLER coin\n")
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.RequestDrain();

  Result<std::string> response = client.ReadLine();
  EXPECT_TRUE(response.ok()) << response.status().message();
  if (response.ok()) {
    EXPECT_EQ(response->rfind("OK spread=", 0), 0u) << *response;
  }
  Result<std::string> after = client.ReadLine();
  EXPECT_FALSE(after.ok());

  thread.join();
  EXPECT_EQ(run_rc, 0);
}

}  // namespace
}  // namespace vblock
