// Tests for the three blocker-selection algorithms (Algorithms 1, 3, 4) on
// the paper's worked examples (Table III) and structural sanity properties.

#include <gtest/gtest.h>

#include <algorithm>

#include "cascade/exact_spread.h"
#include "core/advanced_greedy.h"
#include "core/baseline_greedy.h"
#include "core/evaluator.h"
#include "core/greedy_replace.h"
#include "core/solver.h"
#include "core/unified_instance.h"
#include "gen/generators.h"
#include "prob/probability_models.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

using testing::PaperFigure1Graph;

std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

double ExactSpreadWithBlockers(const Graph& g,
                               const std::vector<VertexId>& seeds,
                               const std::vector<VertexId>& blockers) {
  VertexMask mask = VertexMask::FromVertices(g.NumVertices(), blockers);
  auto r = ComputeExactSpread(g, seeds, &mask);
  EXPECT_TRUE(r.ok());
  return *r;
}

// ------------------------------------------------- Table III: Greedy (AG) --

TEST(AdvancedGreedyTest, TableIIIBudget1PicksV5) {
  // Greedy with b=1 picks v5 (largest Δ = 4.66), spread becomes 3.
  Graph g = PaperFigure1Graph();
  SolverOptions opts;
  opts.algorithm = Algorithm::kAdvancedGreedy;
  opts.budget = 1;
  opts.theta = 20000;
  opts.seed = 5;
  auto result = SolveImin(g, {testing::kV1}, opts);
  ASSERT_EQ(result->blockers.size(), 1u);
  EXPECT_EQ(result->blockers[0], testing::kV5);
  EXPECT_NEAR(ExactSpreadWithBlockers(g, {testing::kV1}, result->blockers), 3.0,
              1e-12);
}

TEST(AdvancedGreedyTest, TableIIIBudget2PicksV5ThenOutNeighbor) {
  // Greedy with b=2: {v5, v2 or v4}, spread 2.
  Graph g = PaperFigure1Graph();
  SolverOptions opts;
  opts.algorithm = Algorithm::kAdvancedGreedy;
  opts.budget = 2;
  opts.theta = 20000;
  opts.seed = 6;
  auto result = SolveImin(g, {testing::kV1}, opts);
  ASSERT_EQ(result->blockers.size(), 2u);
  EXPECT_EQ(result->blockers[0], testing::kV5);
  EXPECT_TRUE(result->blockers[1] == testing::kV2 ||
              result->blockers[1] == testing::kV4);
  EXPECT_NEAR(ExactSpreadWithBlockers(g, {testing::kV1}, result->blockers), 2.0,
              1e-12);
}

TEST(AdvancedGreedyTest, RoundDeltasAreRecorded) {
  Graph g = PaperFigure1Graph();
  UnifiedInstance inst = UnifySeeds(g, {testing::kV1});
  AdvancedGreedyOptions opts;
  opts.budget = 2;
  opts.theta = 20000;
  opts.seed = 7;
  auto sel = AdvancedGreedy(inst.graph, inst.root, opts);
  ASSERT_EQ(sel.stats.round_best_delta.size(), 2u);
  EXPECT_NEAR(sel.stats.round_best_delta[0], 4.66, 0.1);
  EXPECT_NEAR(sel.stats.round_best_delta[1], 1.0, 0.05);
  EXPECT_EQ(sel.stats.rounds_completed, 2u);
}

TEST(AdvancedGreedyTest, BudgetExceedingCandidatesStops) {
  Graph g = testing::PathGraph(3, 1.0);
  UnifiedInstance inst = UnifySeeds(g, {0});
  AdvancedGreedyOptions opts;
  opts.budget = 10;
  opts.theta = 100;
  auto sel = AdvancedGreedy(inst.graph, inst.root, opts);
  EXPECT_EQ(sel.blockers.size(), 2u);  // only 2 non-seed vertices exist
}

TEST(AdvancedGreedyTest, DeadlineReturnsPartialResult) {
  // Large enough that even the pooled engine cannot finish the budget in
  // 0.2s (the pre-pool implementation timed out on a tenth of this size).
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(50000, 4, 3));
  UnifiedInstance inst = UnifySeeds(g, {0});
  AdvancedGreedyOptions opts;
  opts.budget = 100000;  // far more than feasible
  opts.theta = 20000;
  opts.time_limit_seconds = 0.2;
  auto sel = AdvancedGreedy(inst.graph, inst.root, opts);
  EXPECT_TRUE(sel.stats.timed_out);
  EXPECT_LT(sel.blockers.size(), 100000u);
}

// ------------------------------------------------ Table III: OutNeighbors --

TEST(GreedyReplaceTest, TableIIIBudget1ReplacesWithV5) {
  // GR b=1: phase 1 picks v2 or v4; replacement swaps in v5 → spread 3.
  Graph g = PaperFigure1Graph();
  SolverOptions opts;
  opts.algorithm = Algorithm::kGreedyReplace;
  opts.budget = 1;
  opts.theta = 20000;
  opts.seed = 8;
  auto result = SolveImin(g, {testing::kV1}, opts);
  ASSERT_EQ(result->blockers.size(), 1u);
  EXPECT_EQ(result->blockers[0], testing::kV5);
  EXPECT_NEAR(ExactSpreadWithBlockers(g, {testing::kV1}, result->blockers), 3.0,
              1e-12);
}

TEST(GreedyReplaceTest, TableIIIBudget2KeepsBothOutNeighbors) {
  // GR b=2: {v2, v4} with spread 1 — strictly better than Greedy's 2.
  Graph g = PaperFigure1Graph();
  SolverOptions opts;
  opts.algorithm = Algorithm::kGreedyReplace;
  opts.budget = 2;
  opts.theta = 20000;
  opts.seed = 9;
  auto result = SolveImin(g, {testing::kV1}, opts);
  EXPECT_EQ(Sorted(result->blockers),
            (std::vector<VertexId>{testing::kV2, testing::kV4}));
  EXPECT_NEAR(ExactSpreadWithBlockers(g, {testing::kV1}, result->blockers), 1.0,
              1e-12);
}

TEST(GreedyReplaceTest, BudgetBeyondOutDegreeUsesAtMostOutDegree) {
  Graph g = PaperFigure1Graph();
  SolverOptions opts;
  opts.algorithm = Algorithm::kGreedyReplace;
  opts.budget = 5;
  opts.theta = 5000;
  opts.seed = 10;
  auto result = SolveImin(g, {testing::kV1}, opts);
  // dout(v1) = 2; blocking both out-neighbors is already optimal.
  EXPECT_EQ(Sorted(result->blockers),
            (std::vector<VertexId>{testing::kV2, testing::kV4}));
  EXPECT_NEAR(ExactSpreadWithBlockers(g, {testing::kV1}, result->blockers), 1.0,
              1e-12);
}

TEST(GreedyReplaceTest, EarlyTerminationOnStableBlocker) {
  // On the star graph every out-neighbor is optimal; the first replacement
  // re-selects the removed vertex and the loop stops.
  Graph g = testing::StarGraph(10, 1.0);
  UnifiedInstance inst = UnifySeeds(g, {0});
  GreedyReplaceOptions opts;
  opts.budget = 3;
  opts.theta = 500;
  opts.seed = 11;
  auto sel = GreedyReplace(inst.graph, inst.root, opts);
  EXPECT_EQ(sel.blockers.size(), 3u);
  EXPECT_EQ(sel.stats.replacements, 0u);  // early terminated immediately
}

TEST(GreedyReplaceTest, NeverWorseThanPureOutNeighborChoice) {
  // The paper: "the expected spread of GreedyReplace is certainly not larger
  // than the algorithm which only blocks the out-neighbors."
  Graph g = WithTrivalency(GenerateRmat(7, 600, 0.5, 0.2, 0.2, 31), 31);
  std::vector<VertexId> seeds = {0};
  if (g.OutDegree(0) == 0) GTEST_SKIP() << "seed has no out-neighbors";

  SolverOptions gr_opts;
  gr_opts.algorithm = Algorithm::kGreedyReplace;
  gr_opts.budget = 3;
  gr_opts.theta = 4000;
  gr_opts.seed = 12;
  auto gr = SolveImin(g, seeds, gr_opts);

  // Pure out-neighbor baseline: block up to b out-neighbors greedily by Δ.
  UnifiedInstance inst = UnifySeeds(g, seeds);
  GreedyReplaceOptions on_opts;
  on_opts.budget = 3;
  on_opts.theta = 4000;
  on_opts.seed = 12;
  on_opts.time_limit_seconds = 0;
  // Emulate OutNeighbors by running GR phase 1 only: block first b
  // out-neighbors of the root by out-degree order.
  auto root_out = inst.graph.OutNeighbors(inst.root);
  std::vector<VertexId> on_blockers;
  for (size_t i = 0; i < root_out.size() && i < 3; ++i) {
    on_blockers.push_back(inst.to_original[root_out[i]]);
  }

  EvaluationOptions eval;
  eval.mc_rounds = 30000;
  double gr_spread = EvaluateSpread(g, seeds, gr->blockers, eval);
  double on_spread = EvaluateSpread(g, seeds, on_blockers, eval);
  EXPECT_LE(gr_spread, on_spread + 0.25);  // MC tolerance
}

// -------------------------------------------------------- BaselineGreedy --

TEST(BaselineGreedyTest, TableIIIBudget1PicksV5) {
  Graph g = PaperFigure1Graph();
  SolverOptions opts;
  opts.algorithm = Algorithm::kBaselineGreedy;
  opts.budget = 1;
  opts.mc_rounds = 4000;
  opts.seed = 13;
  auto result = SolveImin(g, {testing::kV1}, opts);
  ASSERT_EQ(result->blockers.size(), 1u);
  EXPECT_EQ(result->blockers[0], testing::kV5);
}

TEST(BaselineGreedyTest, AgreesWithAdvancedGreedyOnToyGraph) {
  // "Our computation based on sampled graphs will not sacrifice the
  // effectiveness, compared with MCS" — identical picks on the toy graph.
  Graph g = PaperFigure1Graph();
  SolverOptions bg_opts;
  bg_opts.algorithm = Algorithm::kBaselineGreedy;
  bg_opts.budget = 2;
  bg_opts.mc_rounds = 4000;
  bg_opts.seed = 14;
  auto bg = SolveImin(g, {testing::kV1}, bg_opts);

  SolverOptions ag_opts;
  ag_opts.algorithm = Algorithm::kAdvancedGreedy;
  ag_opts.budget = 2;
  ag_opts.theta = 4000;
  ag_opts.seed = 14;
  auto ag = SolveImin(g, {testing::kV1}, ag_opts);

  ASSERT_EQ(bg->blockers.size(), 2u);
  ASSERT_EQ(ag->blockers.size(), 2u);
  EXPECT_EQ(bg->blockers[0], ag->blockers[0]);  // both pick v5 first
  // Second pick is v2-or-v4 for both.
  EXPECT_TRUE(bg->blockers[1] == testing::kV2 || bg->blockers[1] == testing::kV4);
}

TEST(BaselineGreedyTest, CommonRandomNumbersVariantAlsoPicksV5) {
  Graph g = PaperFigure1Graph();
  UnifiedInstance inst = UnifySeeds(g, {testing::kV1});
  BaselineGreedyOptions opts;
  opts.budget = 1;
  opts.mc_rounds = 4000;
  opts.seed = 15;
  opts.common_random_numbers = true;
  auto sel = BaselineGreedy(inst.graph, inst.root, opts);
  ASSERT_EQ(sel.blockers.size(), 1u);
  EXPECT_EQ(inst.to_original[sel.blockers[0]], testing::kV5);
}

TEST(BaselineGreedyTest, RestrictToReachableGivesSameChoice) {
  Graph g = PaperFigure1Graph();
  UnifiedInstance inst = UnifySeeds(g, {testing::kV1});
  BaselineGreedyOptions opts;
  opts.budget = 1;
  opts.mc_rounds = 4000;
  opts.seed = 16;
  opts.restrict_to_reachable = true;
  auto sel = BaselineGreedy(inst.graph, inst.root, opts);
  ASSERT_EQ(sel.blockers.size(), 1u);
  EXPECT_EQ(inst.to_original[sel.blockers[0]], testing::kV5);
}

TEST(BaselineGreedyTest, DeadlineProducesPartialResult) {
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(500, 3, 17));
  UnifiedInstance inst = UnifySeeds(g, {0});
  BaselineGreedyOptions opts;
  opts.budget = 50;
  opts.mc_rounds = 2000;
  opts.time_limit_seconds = 0.3;
  auto sel = BaselineGreedy(inst.graph, inst.root, opts);
  EXPECT_TRUE(sel.stats.timed_out);
  EXPECT_LT(sel.blockers.size(), 50u);
}

// ------------------------------------------------------------ Solver API --

TEST(SolverTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kRandom), "RA");
  EXPECT_STREQ(AlgorithmName(Algorithm::kOutDegree), "OD");
  EXPECT_STREQ(AlgorithmName(Algorithm::kPageRank), "PR");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBaselineGreedy), "BG");
  EXPECT_STREQ(AlgorithmName(Algorithm::kAdvancedGreedy), "AG");
  EXPECT_STREQ(AlgorithmName(Algorithm::kGreedyReplace), "GR");
}

TEST(SolverTest, BlockersNeverContainSeeds) {
  Graph g = WithTrivalency(GenerateRmat(7, 800, 0.55, 0.2, 0.2, 21), 22);
  std::vector<VertexId> seeds = {0, 1, 2};
  for (Algorithm algo :
       {Algorithm::kRandom, Algorithm::kOutDegree, Algorithm::kPageRank,
        Algorithm::kAdvancedGreedy, Algorithm::kGreedyReplace}) {
    SolverOptions opts;
    opts.algorithm = algo;
    opts.budget = 5;
    opts.theta = 500;
    opts.seed = 23;
    auto result = SolveImin(g, seeds, opts);
    EXPECT_LE(result->blockers.size(), 5u) << AlgorithmName(algo);
    for (VertexId b : result->blockers) {
      EXPECT_TRUE(b != 0 && b != 1 && b != 2)
          << AlgorithmName(algo) << " blocked a seed";
    }
  }
}

TEST(SolverTest, GreedyReplaceDeadlinePropagates) {
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(3000, 4, 29));
  SolverOptions opts;
  opts.algorithm = Algorithm::kGreedyReplace;
  opts.budget = 500;
  opts.theta = 5000;
  opts.seed = 31;
  opts.time_limit_seconds = 0.2;
  auto result = SolveImin(g, {0}, opts);
  EXPECT_TRUE(result->stats.timed_out);
  EXPECT_LT(result->blockers.size(), 500u);
}

TEST(SolverTest, StatsRecordTiming) {
  Graph g = testing::PaperFigure1Graph();
  SolverOptions opts;
  opts.algorithm = Algorithm::kAdvancedGreedy;
  opts.budget = 2;
  opts.theta = 1000;
  auto result = SolveImin(g, {testing::kV1}, opts);
  EXPECT_GT(result->stats.seconds, 0.0);
  EXPECT_EQ(result->stats.rounds_completed, 2u);
}

TEST(GreedyReplaceTest, ReplacementCounterTracksSwaps) {
  // Toy graph b=1: v2 (or v4) is initially picked and then swapped for v5,
  // so exactly one replacement must be recorded.
  Graph g = PaperFigure1Graph();
  UnifiedInstance inst = UnifySeeds(g, {testing::kV1});
  GreedyReplaceOptions opts;
  opts.budget = 1;
  opts.theta = 20000;
  opts.seed = 33;
  auto sel = GreedyReplace(inst.graph, inst.root, opts);
  EXPECT_EQ(sel.stats.replacements, 1u);
  ASSERT_EQ(sel.blockers.size(), 1u);
  EXPECT_EQ(inst.to_original[sel.blockers[0]], testing::kV5);
}

TEST(SolverTest, MultiSeedSpreadFloorsAtSeedCount) {
  // Blocking all out-neighbors of all seeds drives the spread to exactly
  // |S| (Table VII's floor of 10).
  Graph g = testing::StarGraph(30, 1.0);
  std::vector<VertexId> seeds = {0};
  SolverOptions opts;
  opts.algorithm = Algorithm::kGreedyReplace;
  opts.budget = 29;
  opts.theta = 300;
  opts.seed = 31;
  auto result = SolveImin(g, seeds, opts);
  EXPECT_NEAR(ExactSpreadWithBlockers(g, seeds, result->blockers), 1.0, 1e-12);
}

}  // namespace
}  // namespace vblock
