// Deterministic pseudo-fuzzing: random graphs through the whole substrate,
// asserting structural invariants that must hold for ANY input.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "sampling/reachable_sampler.h"

namespace vblock {
namespace {

Graph RandomGraph(uint64_t seed) {
  Rng rng(seed);
  const VertexId n = 2 + static_cast<VertexId>(rng.NextBounded(60));
  const uint64_t m = rng.NextBounded(4 * n);
  GraphBuilder b;
  b.ReserveVertices(n);
  for (uint64_t i = 0; i < m; ++i) {
    auto u = static_cast<VertexId>(rng.NextBounded(n));
    auto v = static_cast<VertexId>(rng.NextBounded(n));
    b.AddEdge(u, v, rng.NextDouble());
  }
  auto g = b.Build();
  VBLOCK_CHECK(g.ok());
  return std::move(g.value());
}

class GraphFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphFuzz, CsrInvariants) {
  Graph g = RandomGraph(GetParam());
  uint64_t out_total = 0, in_total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out_total += g.OutDegree(v);
    in_total += g.InDegree(v);
    auto targets = g.OutNeighbors(v);
    // Sorted by target and duplicate-free (builder merges).
    for (size_t k = 1; k < targets.size(); ++k) {
      EXPECT_LT(targets[k - 1], targets[k]);
    }
    for (VertexId t : targets) EXPECT_LT(t, g.NumVertices());
    for (double p : g.OutProbabilities(v)) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  EXPECT_EQ(out_total, g.NumEdges());
  EXPECT_EQ(in_total, g.NumEdges());
}

TEST_P(GraphFuzz, InOutAdjacencyBijection) {
  Graph g = RandomGraph(GetParam());
  std::multiset<std::pair<VertexId, VertexId>> out_edges, in_edges;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId t : g.OutNeighbors(v)) out_edges.insert({v, t});
    for (VertexId s : g.InNeighbors(v)) in_edges.insert({s, v});
  }
  EXPECT_EQ(out_edges, in_edges);
}

TEST_P(GraphFuzz, EdgeListRoundTrip) {
  Graph g = RandomGraph(GetParam());
  auto edges = g.CollectEdges();
  GraphBuilder b;
  b.ReserveVertices(g.NumVertices());
  for (const Edge& e : edges) b.AddEdge(e.source, e.target, e.probability);
  auto g2 = b.Build();
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->CollectEdges(), edges);
}

TEST_P(GraphFuzz, InducedSubgraphIsSubsetOfEdges) {
  Graph g = RandomGraph(GetParam());
  Rng rng(GetParam() + 1000);
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (rng.NextBernoulli(0.5)) keep.push_back(v);
  }
  Subgraph sub = InducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.NumVertices(), keep.size());
  // Every subgraph edge maps to a parent edge with equal probability.
  for (VertexId lu = 0; lu < sub.graph.NumVertices(); ++lu) {
    auto targets = sub.graph.OutNeighbors(lu);
    auto probs = sub.graph.OutProbabilities(lu);
    for (size_t k = 0; k < targets.size(); ++k) {
      VertexId pu = sub.to_parent[lu];
      VertexId pv = sub.to_parent[targets[k]];
      auto parent_targets = g.OutNeighbors(pu);
      auto parent_probs = g.OutProbabilities(pu);
      bool found = false;
      for (size_t j = 0; j < parent_targets.size(); ++j) {
        if (parent_targets[j] == pv && parent_probs[j] == probs[k]) {
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST_P(GraphFuzz, SamplerSubsetOfReachable) {
  Graph g = RandomGraph(GetParam());
  ReachableSampler sampler(g, 0);
  SampledGraph sample;
  Rng rng(GetParam() + 5);
  std::vector<uint8_t> reachable(g.NumVertices(), 0);
  for (VertexId v : ReachableFrom(g, 0)) reachable[v] = 1;
  for (int round = 0; round < 10; ++round) {
    sampler.Sample(rng, &sample);
    // Sampled vertices are unique and reachable in the full graph.
    std::set<VertexId> seen;
    for (VertexId p : sample.to_parent) {
      EXPECT_TRUE(seen.insert(p).second) << "duplicate vertex in sample";
      EXPECT_TRUE(reachable[p]);
    }
    EXPECT_EQ(sample.to_parent[0], 0u);
  }
}

TEST_P(GraphFuzz, BinaryRoundTrip) {
  Graph g = RandomGraph(GetParam());
  const std::string path =
      ::testing::TempDir() + "/fuzz_" + std::to_string(GetParam()) + ".bin";
  ASSERT_TRUE(WriteBinary(g, path).ok());
  auto g2 = ReadBinary(path);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->CollectEdges(), g.CollectEdges());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace vblock
