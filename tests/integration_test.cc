// End-to-end integration tests: full pipeline (generate → assign model →
// solve → evaluate) across algorithms and dataset stand-ins, checking the
// paper's qualitative orderings.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/solver.h"
#include "gen/dataset_catalog.h"
#include "gen/generators.h"
#include "prob/probability_models.h"

namespace vblock {
namespace {

// Shared tiny-but-nontrivial instance for the ordering tests.
struct Instance {
  Graph graph;
  std::vector<VertexId> seeds;
};

Instance TrInstance(uint64_t seed) {
  // TR probabilities are tiny; use a denser RMAT so cascades exist.
  Graph g = WithTrivalency(GenerateRmat(9, 6000, 0.5, 0.2, 0.2, seed), seed);
  return {std::move(g), {1, 2, 3, 5, 8}};
}

Instance WcInstance(uint64_t seed) {
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(800, 4, seed));
  return {std::move(g), {1, 2, 3, 5, 8}};
}

double RunAndEvaluate(const Instance& inst, Algorithm algo, uint32_t budget,
                      uint64_t seed) {
  SolverOptions opts;
  opts.algorithm = algo;
  opts.budget = budget;
  opts.theta = 3000;
  opts.mc_rounds = 300;
  opts.seed = seed;
  auto result = SolveImin(inst.graph, inst.seeds, opts);
  EvaluationOptions eval;
  eval.mc_rounds = 30000;
  eval.seed = 999;
  return EvaluateSpread(inst.graph, inst.seeds, result->blockers, eval);
}

TEST(IntegrationTest, GreedyFamilyBeatsRandomUnderWc) {
  Instance inst = WcInstance(7);
  double ra = RunAndEvaluate(inst, Algorithm::kRandom, 20, 1);
  double ag = RunAndEvaluate(inst, Algorithm::kAdvancedGreedy, 20, 1);
  double gr = RunAndEvaluate(inst, Algorithm::kGreedyReplace, 20, 1);
  // Paper Table VII ordering: GR ≤ AG ≪ RA.
  EXPECT_LT(ag, ra);
  EXPECT_LT(gr, ra);
  EXPECT_LE(gr, ag * 1.05 + 0.5);  // GR at least about as good as AG
}

TEST(IntegrationTest, GreedyFamilyBeatsOutDegreeUnderWc) {
  Instance inst = WcInstance(8);
  double od = RunAndEvaluate(inst, Algorithm::kOutDegree, 20, 2);
  double ag = RunAndEvaluate(inst, Algorithm::kAdvancedGreedy, 20, 2);
  EXPECT_LT(ag, od);
}

TEST(IntegrationTest, BiggerBudgetNeverHurts) {
  Instance inst = WcInstance(9);
  double b10 = RunAndEvaluate(inst, Algorithm::kGreedyReplace, 10, 3);
  double b40 = RunAndEvaluate(inst, Algorithm::kGreedyReplace, 40, 3);
  EXPECT_LE(b40, b10 + 0.5);  // MC tolerance
}

TEST(IntegrationTest, SpreadLowerBoundIsSeedCount) {
  Instance inst = WcInstance(10);
  for (Algorithm algo : {Algorithm::kRandom, Algorithm::kOutDegree,
                         Algorithm::kGreedyReplace}) {
    double spread = RunAndEvaluate(inst, algo, 30, 4);
    EXPECT_GE(spread, static_cast<double>(inst.seeds.size()) - 1e-9)
        << AlgorithmName(algo);
  }
}

TEST(IntegrationTest, TrModelPipelineRuns) {
  Instance inst = TrInstance(11);
  double gr = RunAndEvaluate(inst, Algorithm::kGreedyReplace, 10, 5);
  double base = EvaluateSpread(inst.graph, inst.seeds, {});
  EXPECT_LE(gr, base + 1e-9);
  EXPECT_GE(gr, static_cast<double>(inst.seeds.size()) - 1e-9);
}

TEST(IntegrationTest, BaselineGreedyMatchesAdvancedGreedyQuality) {
  // Paper §V-C: AG does not sacrifice effectiveness vs BG. Compare final
  // spreads on a small instance where BG is affordable.
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(150, 3, 13));
  std::vector<VertexId> seeds = {0, 1};
  SolverOptions bg_opts;
  bg_opts.algorithm = Algorithm::kBaselineGreedy;
  bg_opts.budget = 5;
  bg_opts.mc_rounds = 2000;
  bg_opts.seed = 6;
  auto bg = SolveImin(g, seeds, bg_opts);

  SolverOptions ag_opts;
  ag_opts.algorithm = Algorithm::kAdvancedGreedy;
  ag_opts.budget = 5;
  ag_opts.theta = 5000;
  ag_opts.seed = 6;
  auto ag = SolveImin(g, seeds, ag_opts);

  EvaluationOptions eval;
  eval.mc_rounds = 50000;
  double bg_spread = EvaluateSpread(g, seeds, bg->blockers, eval);
  double ag_spread = EvaluateSpread(g, seeds, ag->blockers, eval);
  // Equal effectiveness up to sampling noise.
  EXPECT_NEAR(ag_spread, bg_spread, 0.25 * bg_spread + 0.5);
}

TEST(IntegrationTest, AllCatalogDatasetsSolveAtTinyScale) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    Graph base = MakeDataset(spec, 0.01, 99);
    Graph g = spec.directed ? WithTrivalency(base, 7)
                            : WithWeightedCascade(base);
    std::vector<VertexId> seeds = {0, 1, 2};
    SolverOptions opts;
    opts.algorithm = Algorithm::kGreedyReplace;
    opts.budget = 5;
    opts.theta = 300;
    opts.seed = 3;
    auto result = SolveImin(g, seeds, opts);
    EXPECT_LE(result->blockers.size(), 5u) << spec.name;
    double spread = EvaluateSpread(g, seeds, result->blockers,
                                   {.mc_rounds = 2000});
    EXPECT_GE(spread, 3.0 - 1e-9) << spec.name;
  }
}

TEST(IntegrationTest, SolverIsDeterministicInSeed) {
  Instance inst = WcInstance(15);
  SolverOptions opts;
  opts.algorithm = Algorithm::kGreedyReplace;
  opts.budget = 10;
  opts.theta = 1000;
  opts.seed = 77;
  auto a = SolveImin(inst.graph, inst.seeds, opts);
  auto b = SolveImin(inst.graph, inst.seeds, opts);
  EXPECT_EQ(a->blockers, b->blockers);
}

TEST(IntegrationTest, ThreadedSolverMatchesSequential) {
  Instance inst = WcInstance(16);
  SolverOptions opts;
  opts.algorithm = Algorithm::kAdvancedGreedy;
  opts.budget = 8;
  opts.theta = 1000;
  opts.seed = 5;
  opts.threads = 1;
  auto seq = SolveImin(inst.graph, inst.seeds, opts);
  opts.threads = 4;
  auto par = SolveImin(inst.graph, inst.seeds, opts);
  EXPECT_EQ(seq->blockers, par->blockers);
}

}  // namespace
}  // namespace vblock
