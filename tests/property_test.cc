// Property-based sweeps (parameterized gtest): invariants that must hold on
// randomly generated instances across generator families, probability
// models, and algorithms.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cascade/exact_spread.h"
#include "cascade/monte_carlo.h"
#include "core/solver.h"
#include "core/spread_decrease.h"
#include "core/unified_instance.h"
#include "gen/generators.h"
#include "graph/traversal.h"
#include "prob/probability_models.h"

namespace vblock {
namespace {

enum class Family { kErdosRenyi, kBarabasiAlbert, kWattsStrogatz, kRmat };
enum class Model { kTrivalency, kWeightedCascade, kUniform };

Graph MakeGraph(Family family, uint64_t seed) {
  switch (family) {
    case Family::kErdosRenyi:
      return GenerateErdosRenyi(120, 700, seed);
    case Family::kBarabasiAlbert:
      return GenerateBarabasiAlbert(120, 3, seed);
    case Family::kWattsStrogatz:
      return GenerateWattsStrogatz(120, 3, 0.2, seed);
    case Family::kRmat:
      return GenerateRmat(7, 700, 0.55, 0.2, 0.2, seed);
  }
  return Graph();
}

Graph ApplyModel(const Graph& g, Model model, uint64_t seed) {
  switch (model) {
    case Model::kTrivalency:
      return WithTrivalency(g, seed);
    case Model::kWeightedCascade:
      return WithWeightedCascade(g);
    case Model::kUniform:
      return WithUniformProbability(g, 0.05, 0.6, seed);
  }
  return Graph();
}

using SweepParam = std::tuple<Family, Model, uint64_t>;

class InstanceSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  Graph MakeInstance() const {
    auto [family, model, seed] = GetParam();
    return ApplyModel(MakeGraph(family, seed), model, seed + 1);
  }
};

// Invariant 1 (Lemma 1): the Algorithm-2 expected-spread estimate agrees
// with the Monte-Carlo estimate.
TEST_P(InstanceSweep, SampledSpreadMatchesMonteCarlo) {
  Graph g = MakeInstance();
  UnifiedInstance inst = UnifySeeds(g, {0, 1});
  SpreadDecreaseOptions sd;
  sd.theta = 20000;
  sd.seed = 11;
  auto alg2 = ComputeSpreadDecrease(inst.graph, inst.root, sd);
  MonteCarloOptions mc;
  mc.rounds = 20000;
  mc.seed = 12;
  double mcs = EstimateSpread(inst.graph, {inst.root}, mc);
  const double tol = 0.05 * std::max(1.0, mcs) + 0.1;
  EXPECT_NEAR(alg2.expected_spread, mcs, tol);
}

// Invariant 2 (Theorem 4): Δ[u] equals the Monte-Carlo spread difference
// for the top-scoring candidate.
TEST_P(InstanceSweep, TopDeltaMatchesSpreadDifference) {
  Graph g = MakeInstance();
  UnifiedInstance inst = UnifySeeds(g, {0});
  SpreadDecreaseOptions sd;
  sd.theta = 30000;
  sd.seed = 21;
  auto alg2 = ComputeSpreadDecrease(inst.graph, inst.root, sd);
  VertexId best = kInvalidVertex;
  double best_delta = -1;
  for (VertexId v = 0; v < inst.graph.NumVertices(); ++v) {
    if (v == inst.root) continue;
    if (alg2.delta[v] > best_delta) {
      best = v;
      best_delta = alg2.delta[v];
    }
  }
  ASSERT_NE(best, kInvalidVertex);
  MonteCarloOptions mc;
  mc.rounds = 30000;
  mc.seed = 22;
  double base = EstimateSpread(inst.graph, {inst.root}, mc);
  VertexMask mask(inst.graph.NumVertices());
  mask.Set(best);
  double without = EstimateSpread(inst.graph, {inst.root}, mc, &mask);
  const double tol = 0.08 * std::max(1.0, base) + 0.15;
  EXPECT_NEAR(best_delta, base - without, tol);
}

// Invariant 3: Δ is bounded by the expected spread (blocking one vertex
// cannot remove more than everything downstream of the root).
TEST_P(InstanceSweep, DeltaBoundedBySpread) {
  Graph g = MakeInstance();
  UnifiedInstance inst = UnifySeeds(g, {0, 1, 2});
  SpreadDecreaseOptions sd;
  sd.theta = 3000;
  sd.seed = 31;
  auto alg2 = ComputeSpreadDecrease(inst.graph, inst.root, sd);
  for (VertexId v = 0; v < inst.graph.NumVertices(); ++v) {
    EXPECT_GE(alg2.delta[v], 0.0);
    EXPECT_LE(alg2.delta[v], alg2.expected_spread);
  }
}

// Invariant 4: unreachable vertices always score Δ = 0.
TEST_P(InstanceSweep, UnreachableVerticesScoreZero) {
  Graph g = MakeInstance();
  UnifiedInstance inst = UnifySeeds(g, {0});
  SpreadDecreaseOptions sd;
  sd.theta = 500;
  sd.seed = 41;
  auto alg2 = ComputeSpreadDecrease(inst.graph, inst.root, sd);
  std::vector<uint8_t> reachable(inst.graph.NumVertices(), 0);
  for (VertexId v : ReachableFrom(inst.graph, inst.root)) reachable[v] = 1;
  for (VertexId v = 0; v < inst.graph.NumVertices(); ++v) {
    if (!reachable[v]) {
      EXPECT_DOUBLE_EQ(alg2.delta[v], 0.0) << v;
    }
  }
}

// Invariant 5 (monotonicity, Theorem 2): growing the blocker set never
// increases the spread.
TEST_P(InstanceSweep, SpreadMonotoneInBlockers) {
  Graph g = MakeInstance();
  std::vector<VertexId> seeds = {0, 1};
  SolverOptions opts;
  opts.algorithm = Algorithm::kOutDegree;
  opts.budget = 12;
  auto od = SolveImin(g, seeds, opts);
  MonteCarloOptions mc;
  mc.rounds = 15000;
  mc.seed = 51;
  double prev = EstimateSpread(g, seeds, mc);
  for (size_t k = 4; k <= od->blockers.size(); k += 4) {
    std::vector<VertexId> prefix(od->blockers.begin(),
                                 od->blockers.begin() + static_cast<ptrdiff_t>(k));
    VertexMask mask = VertexMask::FromVertices(g.NumVertices(), prefix);
    double spread = EstimateSpread(g, seeds, mc, &mask);
    EXPECT_LE(spread, prev + 0.05 * prev + 0.2);
    prev = spread;
  }
}

// Invariant 6: the greedy algorithms return distinct non-seed blockers
// within budget.
TEST_P(InstanceSweep, GreedyOutputWellFormed) {
  Graph g = MakeInstance();
  std::vector<VertexId> seeds = {0, 5};
  SolverOptions opts;
  opts.algorithm = Algorithm::kAdvancedGreedy;
  opts.budget = 8;
  opts.theta = 400;
  opts.seed = 61;
  auto result = SolveImin(g, seeds, opts);
  EXPECT_LE(result->blockers.size(), 8u);
  std::vector<uint8_t> seen(g.NumVertices(), 0);
  for (VertexId b : result->blockers) {
    EXPECT_NE(b, 0u);
    EXPECT_NE(b, 5u);
    EXPECT_FALSE(seen[b]) << "duplicate blocker " << b;
    seen[b] = 1;
  }
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  static const char* kFamilies[] = {"ER", "BA", "WS", "RMAT"};
  static const char* kModels[] = {"TR", "WC", "UNI"};
  return std::string(kFamilies[static_cast<int>(std::get<0>(info.param))]) +
         "_" + kModels[static_cast<int>(std::get<1>(info.param))] + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InstanceSweep,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi,
                                         Family::kBarabasiAlbert,
                                         Family::kWattsStrogatz, Family::kRmat),
                       ::testing::Values(Model::kTrivalency,
                                         Model::kWeightedCascade,
                                         Model::kUniform),
                       ::testing::Values(101ull, 202ull)),
    SweepName);

}  // namespace
}  // namespace vblock
