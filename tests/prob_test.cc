// Unit tests for the edge-probability models (TR / WC / constant / uniform).

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "prob/probability_models.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

TEST(TrivalencyTest, UsesOnlyThreeLevels) {
  Graph g = WithTrivalency(GenerateErdosRenyi(100, 1000, 1), 7);
  int counts[3] = {0, 0, 0};
  for (const Edge& e : g.CollectEdges()) {
    if (e.probability == 0.1) {
      ++counts[0];
    } else if (e.probability == 0.01) {
      ++counts[1];
    } else if (e.probability == 0.001) {
      ++counts[2];
    } else {
      FAIL() << "unexpected TR probability " << e.probability;
    }
  }
  // Uniform selection: each level gets roughly a third.
  for (int c : counts) EXPECT_NEAR(c, 1000 / 3.0, 120);
}

TEST(TrivalencyTest, DeterministicInSeed) {
  Graph base = GenerateErdosRenyi(50, 300, 2);
  EXPECT_EQ(WithTrivalency(base, 9).CollectEdges(),
            WithTrivalency(base, 9).CollectEdges());
}

TEST(TrivalencyTest, PreservesStructure) {
  Graph base = testing::PaperFigure1Graph();
  Graph g = WithTrivalency(base, 5);
  EXPECT_EQ(g.NumVertices(), base.NumVertices());
  EXPECT_EQ(g.NumEdges(), base.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.OutDegree(v), base.OutDegree(v));
  }
}

TEST(WeightedCascadeTest, ProbabilityIsInverseInDegree) {
  Graph g = WithWeightedCascade(testing::PaperFigure1Graph());
  for (const Edge& e : g.CollectEdges()) {
    EXPECT_DOUBLE_EQ(e.probability, 1.0 / g.InDegree(e.target));
  }
}

TEST(WeightedCascadeTest, IncomingMassSumsToOne) {
  Graph g = WithWeightedCascade(GenerateErdosRenyi(80, 600, 3));
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.InDegree(v) == 0) continue;
    double sum = 0;
    for (double p : g.InProbabilities(v)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ConstantTest, AssignsExactly) {
  Graph g = WithConstantProbability(testing::PaperFigure1Graph(), 0.42);
  for (const Edge& e : g.CollectEdges()) {
    EXPECT_DOUBLE_EQ(e.probability, 0.42);
  }
}

TEST(UniformTest, StaysWithinRange) {
  Graph g = WithUniformProbability(GenerateErdosRenyi(60, 500, 4), 0.2, 0.7, 5);
  for (const Edge& e : g.CollectEdges()) {
    EXPECT_GE(e.probability, 0.2);
    EXPECT_LE(e.probability, 0.7);
  }
}

TEST(UniformTest, MeanNearMidpoint) {
  Graph g = WithUniformProbability(GenerateErdosRenyi(100, 3000, 6), 0.0, 1.0, 7);
  EXPECT_NEAR(g.TotalProbabilityMass() / g.NumEdges(), 0.5, 0.03);
}

}  // namespace
}  // namespace vblock
