// Tests for cascade timelines.

#include <gtest/gtest.h>

#include <numeric>

#include "cascade/timeline.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

TEST(TimelineTest, DeterministicPathOneStepPerVertex) {
  Graph g = testing::PathGraph(5, 1.0);
  TimelineOptions opts;
  opts.rounds = 50;
  auto timeline = ExpectedActivationsPerStep(g, {0}, opts);
  ASSERT_EQ(timeline.size(), 5u);
  for (double x : timeline) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(TimelineTest, StarActivatesInOneWave) {
  Graph g = testing::StarGraph(11, 0.5);
  TimelineOptions opts;
  opts.rounds = 40000;
  opts.seed = 3;
  auto timeline = ExpectedActivationsPerStep(g, {0}, opts);
  ASSERT_GE(timeline.size(), 1u);
  EXPECT_DOUBLE_EQ(timeline[0], 1.0);
  if (timeline.size() > 1) {
    EXPECT_NEAR(timeline[1], 5.0, 0.1);  // 10 leaves x 0.5
  }
}

TEST(TimelineTest, SumEqualsExpectedSpread) {
  Graph g = testing::PaperFigure1Graph();
  TimelineOptions opts;
  opts.rounds = 100000;
  opts.seed = 7;
  auto timeline = ExpectedActivationsPerStep(g, {testing::kV1}, opts);
  const double total =
      std::accumulate(timeline.begin(), timeline.end(), 0.0);
  EXPECT_NEAR(total, 7.66, 0.03);
}

TEST(TimelineTest, ToyGraphWaveStructure) {
  // Wave 0: v1. Wave 1: v2,v4 (2). Wave 2: v5 (1). Wave 3: v3,v6,v9 + 0.5
  // of v8 = 3.5 expected.
  Graph g = testing::PaperFigure1Graph();
  TimelineOptions opts;
  opts.rounds = 100000;
  opts.seed = 9;
  auto timeline = ExpectedActivationsPerStep(g, {testing::kV1}, opts);
  ASSERT_GE(timeline.size(), 4u);
  EXPECT_DOUBLE_EQ(timeline[0], 1.0);
  EXPECT_DOUBLE_EQ(timeline[1], 2.0);
  EXPECT_DOUBLE_EQ(timeline[2], 1.0);
  EXPECT_NEAR(timeline[3], 3.5, 0.02);
}

TEST(TimelineTest, BlockedVertexFlattensTimeline) {
  Graph g = testing::PaperFigure1Graph();
  VertexMask blocked(g.NumVertices());
  blocked.Set(testing::kV5);
  TimelineOptions opts;
  opts.rounds = 200;
  auto timeline =
      ExpectedActivationsPerStep(g, {testing::kV1}, opts, &blocked);
  ASSERT_EQ(timeline.size(), 2u);  // v1, then {v2,v4}; nothing after
  EXPECT_DOUBLE_EQ(timeline[0], 1.0);
  EXPECT_DOUBLE_EQ(timeline[1], 2.0);
}

TEST(TimelineTest, MaxStepsBucketsTail) {
  Graph g = testing::PathGraph(8, 1.0);
  TimelineOptions opts;
  opts.rounds = 10;
  opts.max_steps = 3;
  auto timeline = ExpectedActivationsPerStep(g, {0}, opts);
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_DOUBLE_EQ(timeline[0], 1.0);
  EXPECT_DOUBLE_EQ(timeline[1], 1.0);
  EXPECT_DOUBLE_EQ(timeline[2], 6.0);  // remaining 6 vertices folded in
}

TEST(TimelineTest, AllSeedsBlockedGivesEmptyTimeline) {
  Graph g = testing::PathGraph(4, 1.0);
  VertexMask blocked(4);
  blocked.Set(0);
  TimelineOptions opts;
  opts.rounds = 10;
  auto timeline = ExpectedActivationsPerStep(g, {0}, opts, &blocked);
  EXPECT_TRUE(timeline.empty());
}

}  // namespace
}  // namespace vblock
