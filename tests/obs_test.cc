// Copyright (c) the vblock authors. Licensed under the MIT license.
//
// Observability layer tests: instrument exactness under concurrency,
// registry pointer stability and snapshot ordering, the Prometheus text
// exposition, SolveTrace span/cell semantics, the trace-on == trace-off
// differential (solver and warm service path), and the STATS ↔ registry
// reconciliation that makes the two read paths one.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "obs/solve_trace.h"
#include "prob/probability_models.h"
#include "service/graph_registry.h"
#include "service/query_service.h"

namespace vblock {
namespace {

using obs::MetricSnapshot;
using obs::MetricType;
using obs::MetricsRegistry;
using obs::ScopedSpan;
using obs::SolveStage;
using obs::SolveTrace;

// ------------------------------------------------------------ instruments --

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(FloatCounterTest, ConcurrentAddsSumExactly) {
  obs::FloatCounter counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(0.25);
    });
  }
  for (std::thread& t : threads) t.join();
  // 0.25 is exactly representable; the sum is exact regardless of order.
  EXPECT_EQ(counter.Value(), kThreads * kPerThread * 0.25);
}

TEST(GaugeTest, SetAndAdd) {
  obs::Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
}

TEST(HistogramMetricTest, ConcurrentRecordsMergeToExactCount) {
  obs::HistogramMetric metric;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metric, t] {
      for (int i = 0; i < kPerThread; ++i) {
        metric.Record(0.001 * (t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(metric.Merged().count(), uint64_t{kThreads * kPerThread});
}

// --------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x_total", "X.");
  obs::Counter* b = registry.GetCounter("x_total", "X.");
  EXPECT_EQ(a, b);  // same cell: STATS and METRICS read the same totals
  a->Increment(5);
  EXPECT_EQ(b->Value(), 5u);

  obs::HistogramMetric* h1 = registry.GetHistogram("lat_seconds", "L.");
  obs::HistogramMetric* h2 = registry.GetHistogram("lat_seconds", "L.");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zz_total", "Z.");
  registry.GetGauge("aa", "A.");
  registry.GetFloatCounter("mm_seconds_total", "M.");
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "aa");
  EXPECT_EQ(snapshot[1].name, "mm_seconds_total");
  EXPECT_EQ(snapshot[2].name, "zz_total");
}

TEST(MetricsRegistryTest, CallbackIsEvaluatedAtSnapshotAndReplaceable) {
  MetricsRegistry registry;
  int calls = 0;
  registry.RegisterCallback("cb", "C.", MetricType::kGauge,
                            [&calls] { return double(++calls); });
  EXPECT_EQ(calls, 0);  // lazy: registration does not evaluate
  EXPECT_EQ(registry.Snapshot()[0].value, 1.0);
  EXPECT_EQ(registry.Snapshot()[0].value, 2.0);
  // Re-registration replaces (a front-end re-binding its source must not
  // grow the metric set or double-report).
  registry.RegisterCallback("cb", "C.", MetricType::kGauge,
                            [] { return 42.0; });
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].value, 42.0);
}

// ------------------------------------------------------------- exposition --

TEST(PrometheusTest, ScalarExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("test_requests_total", "Requests.")->Increment(3);
  registry.GetGauge("test_depth", "Depth.")->Set(-2);
  EXPECT_EQ(obs::RenderPrometheusText(registry.Snapshot()),
            "# HELP test_depth Depth.\n"
            "# TYPE test_depth gauge\n"
            "test_depth -2\n"
            "# HELP test_requests_total Requests.\n"
            "# TYPE test_requests_total counter\n"
            "test_requests_total 3\n"
            "# EOF");
}

TEST(PrometheusTest, LabeledFamilySharesOneHeader) {
  MetricsRegistry registry;
  registry.GetCounter("test_stage_seconds_total{stage=\"a\"}", "S.");
  registry.GetCounter("test_stage_seconds_total{stage=\"b\"}", "S.");
  const std::string text = obs::RenderPrometheusText(registry.Snapshot());
  size_t headers = 0, from = 0;
  while ((from = text.find("# TYPE test_stage_seconds_total", from)) !=
         std::string::npos) {
    ++headers;
    ++from;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(text.find("test_stage_seconds_total{stage=\"a\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_stage_seconds_total{stage=\"b\"} 0\n"),
            std::string::npos);
}

TEST(PrometheusTest, HistogramExpansionIsCumulativeAndConsistent) {
  MetricsRegistry registry;
  obs::HistogramMetric* h = registry.GetHistogram("lat_seconds", "L.");
  h->Record(0.001);
  h->Record(0.010);
  h->Record(1000.0);
  const std::string text = obs::RenderPrometheusText(registry.Snapshot());
  // +Inf bucket equals _count; the renderer ends with the bare "# EOF"
  // terminator (no trailing newline — the wire writer appends it).
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum "), std::string::npos);
  EXPECT_EQ(text.rfind("# EOF"), text.size() - 5);

  // Cumulative monotonicity across every rendered bucket.
  uint64_t previous = 0;
  size_t pos = 0;
  while ((pos = text.find("lat_seconds_bucket{le=\"", pos)) !=
         std::string::npos) {
    const size_t space = text.find(' ', pos);
    const size_t eol = text.find('\n', space);
    const uint64_t value =
        std::stoull(text.substr(space + 1, eol - space - 1));
    EXPECT_GE(value, previous) << text.substr(pos, eol - pos);
    previous = value;
    pos = eol;
  }
}

// ------------------------------------------------------------- SolveTrace --

TEST(SolveTraceTest, NullScopedSpanIsANoop) {
  ScopedSpan span(nullptr, SolveStage::kPoolBuild);  // must not crash
}

TEST(SolveTraceTest, SpansNestWithDepthAndEnclosingTime) {
  SolveTrace trace;
  {
    ScopedSpan outer(&trace, SolveStage::kPoolBuild);
    {
      ScopedSpan inner(&trace, SolveStage::kSampleDraw);
    }
  }
  ASSERT_EQ(trace.num_spans(), 2u);
  const SolveTrace::Span* spans = trace.spans();
  EXPECT_EQ(spans[0].stage, SolveStage::kPoolBuild);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].stage, SolveStage::kSampleDraw);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_LE(spans[0].begin_nanos, spans[1].begin_nanos);
  EXPECT_GE(spans[0].end_nanos, spans[1].end_nanos);
  EXPECT_NE(spans[0].end_nanos, 0u);
  // The enclosing stage accumulated at least the inner stage's time.
  EXPECT_GE(trace.stage_nanos(SolveStage::kPoolBuild),
            trace.stage_nanos(SolveStage::kSampleDraw));
}

TEST(SolveTraceTest, TotalsReportsNonzeroStagesInEnumOrder) {
  SolveTrace trace;
  trace.Add(SolveStage::kSelect, 30);
  trace.Add(SolveStage::kUnify, 10);
  trace.Add(SolveStage::kSelect, 5, 2);
  const std::vector<SolveTrace::StageTotal> totals = trace.Totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].stage, SolveStage::kUnify);
  EXPECT_EQ(totals[0].nanos, 10u);
  EXPECT_EQ(totals[0].calls, 1u);
  EXPECT_EQ(totals[1].stage, SolveStage::kSelect);
  EXPECT_EQ(totals[1].nanos, 35u);
  EXPECT_EQ(totals[1].calls, 3u);
}

TEST(SolveTraceTest, SpanOverflowIsCountedNotStored) {
  SolveTrace trace;
  for (uint32_t i = 0; i < SolveTrace::kMaxSpans + 6; ++i) {
    ScopedSpan span(&trace, SolveStage::kScore);
  }
  EXPECT_EQ(trace.num_spans(), SolveTrace::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 6u);
  // Cells still saw every span: overflow loses the log entry only.
  EXPECT_EQ(trace.stage_calls(SolveStage::kScore),
            uint64_t{SolveTrace::kMaxSpans + 6});
}

TEST(SolveTraceTest, AddIsThreadSafeAndExact) {
  SolveTrace trace;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        trace.Add(SolveStage::kSampleDraw, 3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.stage_calls(SolveStage::kSampleDraw),
            kThreads * kPerThread);
  EXPECT_EQ(trace.stage_nanos(SolveStage::kSampleDraw),
            3 * kThreads * kPerThread);
}

// ------------------------------------------- trace-on == trace-off (core) --

Graph TestGraph() {
  return WithWeightedCascade(GenerateBarabasiAlbert(300, 3, /*seed=*/7));
}

void ExpectSameBits(const SolverResult& a, const SolverResult& b) {
  EXPECT_EQ(a.blockers, b.blockers);
  EXPECT_EQ(a.stats.selection_trace, b.stats.selection_trace);
  EXPECT_EQ(a.stats.rounds_completed, b.stats.rounds_completed);
  EXPECT_EQ(a.stats.replacements, b.stats.replacements);
  EXPECT_EQ(a.stats.timed_out, b.stats.timed_out);
}

TEST(TraceDifferentialTest, SolverResultsAreBitIdenticalWithTracing) {
  const Graph g = TestGraph();
  const std::vector<VertexId> seeds = {1, 2, 3};
  for (const Algorithm algorithm :
       {Algorithm::kAdvancedGreedy, Algorithm::kGreedyReplace,
        Algorithm::kBaselineGreedy}) {
    SolverOptions options;
    options.algorithm = algorithm;
    options.budget = 4;
    options.theta = 300;
    options.mc_rounds = 120;
    options.seed = 11;
    options.threads = 2;
    options.sample_reuse = SampleReuse::kPrune;

    Result<SolverResult> off = SolveImin(g, seeds, options);
    ASSERT_TRUE(off.ok()) << off.status().message();
    EXPECT_EQ(off->trace, nullptr);

    options.trace = true;
    Result<SolverResult> on = SolveImin(g, seeds, options);
    ASSERT_TRUE(on.ok()) << on.status().message();
    ExpectSameBits(*on, *off);

    ASSERT_NE(on->trace, nullptr);
    const std::vector<SolveTrace::StageTotal> totals = on->trace->Totals();
    EXPECT_FALSE(totals.empty());
    EXPECT_GT(on->trace->stage_calls(SolveStage::kUnify), 0u);
    if (algorithm == Algorithm::kBaselineGreedy) {
      // BG has no pool: its stochastic work is per-estimate Monte-Carlo.
      EXPECT_GT(on->trace->stage_calls(SolveStage::kSampleDraw), 0u);
    } else {
      EXPECT_GT(on->trace->stage_nanos(SolveStage::kPoolBuild), 0u);
      EXPECT_GT(on->trace->stage_calls(SolveStage::kSelect), 0u);
    }
  }
}

// ---------------------------------------------- service path + reconcile --

ServiceOptions FastOptions() {
  ServiceOptions options;
  options.num_threads = 2;
  options.defaults.theta = 200;
  options.defaults.mc_rounds = 200;
  options.defaults.seed = 11;
  return options;
}

IminRequest MakeRequest(bool trace) {
  IminRequest request;
  request.graph = "g";
  request.query.seeds = {1, 2, 3};
  request.query.budget = 4;
  request.query.algorithm = Algorithm::kGreedyReplace;
  request.query.sample_reuse = SampleReuse::kPrune;
  request.query.trace = trace;
  return request;
}

TEST(TraceDifferentialTest, WarmServicePathIsBitIdenticalWithTracing) {
  GraphRegistry registry;
  registry.Add("g", TestGraph());
  QueryService service(&registry, FastOptions());

  Result<SolverResult> cold = service.SubmitAndWait(MakeRequest(false));
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  Result<SolverResult> warm = service.SubmitAndWait(MakeRequest(false));
  ASSERT_TRUE(warm.ok());
  ExpectSameBits(*warm, *cold);
  EXPECT_EQ(warm->trace, nullptr);

  // The traced request rides the same warm pool and must not perturb it.
  Result<SolverResult> traced = service.SubmitAndWait(MakeRequest(true));
  ASSERT_TRUE(traced.ok()) << traced.status().message();
  ExpectSameBits(*traced, *cold);
  ASSERT_NE(traced->trace, nullptr);
  EXPECT_GT(traced->trace->id(), 0u);  // service-assigned trace id
  // Warm hit: no pool build, but selection and restore ran under trace.
  EXPECT_GT(traced->trace->stage_calls(SolveStage::kSelect), 0u);
  EXPECT_GT(traced->trace->stage_calls(SolveStage::kRestore), 0u);
  EXPECT_EQ(traced->trace->stage_calls(SolveStage::kPoolBuild), 0u);

  // ...and the warm path afterwards still reproduces the cold bits.
  Result<SolverResult> after = service.SubmitAndWait(MakeRequest(false));
  ASSERT_TRUE(after.ok());
  ExpectSameBits(*after, *cold);
}

std::map<std::string, double> ScalarsByName(
    const std::vector<MetricSnapshot>& snapshot) {
  std::map<std::string, double> out;
  for (const MetricSnapshot& m : snapshot) {
    if (m.type != MetricType::kHistogram) out[m.name] = m.value;
  }
  return out;
}

TEST(ReconcileTest, StatsAndRegistrySnapshotAgreeExactly) {
  GraphRegistry registry;
  registry.Add("g", TestGraph());
  QueryService service(&registry, FastOptions());

  // A mixed workload: cold solve, warm repeat, traced repeat, an invalid
  // request (unknown graph), a heuristic solve.
  ASSERT_TRUE(service.SubmitAndWait(MakeRequest(false)).ok());
  ASSERT_TRUE(service.SubmitAndWait(MakeRequest(false)).ok());
  ASSERT_TRUE(service.SubmitAndWait(MakeRequest(true)).ok());
  IminRequest bad = MakeRequest(false);
  bad.graph = "nope";
  EXPECT_FALSE(service.SubmitAndWait(bad).ok());
  IminRequest od = MakeRequest(false);
  od.query.algorithm = Algorithm::kOutDegree;
  od.query.budget = 2;
  ASSERT_TRUE(service.SubmitAndWait(od).ok());

  const ServiceStats stats = service.Stats();
  const std::map<std::string, double> m =
      ScalarsByName(service.metrics().Snapshot());

  // Every STATS counter is a projection of a registry cell; the two read
  // paths must agree exactly at quiescence.
  EXPECT_EQ(double(stats.submitted), m.at("vblock_requests_submitted_total"));
  EXPECT_EQ(double(stats.invalid), m.at("vblock_requests_invalid_total"));
  EXPECT_EQ(double(stats.rejected), m.at("vblock_requests_rejected_total"));
  EXPECT_EQ(double(stats.coalesced),
            m.at("vblock_requests_coalesced_total"));
  EXPECT_EQ(double(stats.completed),
            m.at("vblock_requests_completed_total"));
  EXPECT_EQ(double(stats.deadline_expired),
            m.at("vblock_requests_deadline_expired_total"));
  EXPECT_EQ(double(stats.queue_depth), m.at("vblock_queue_depth"));
  EXPECT_EQ(double(stats.in_flight), m.at("vblock_in_flight"));
  EXPECT_EQ(double(stats.cache.hits), m.at("vblock_pool_hits_total"));
  EXPECT_EQ(double(stats.cache.misses), m.at("vblock_pool_misses_total"));
  EXPECT_EQ(double(stats.cache.inserts), m.at("vblock_pool_inserts_total"));
  EXPECT_EQ(double(stats.cache.evictions),
            m.at("vblock_pool_evictions_total"));
  EXPECT_EQ(double(stats.cache.migrations),
            m.at("vblock_pool_migrations_total"));
  EXPECT_EQ(double(stats.cache.bytes_in_use), m.at("vblock_pool_bytes"));
  EXPECT_EQ(double(stats.cache.entries), m.at("vblock_pool_entries"));
  EXPECT_EQ(double(registry.size()), m.at("vblock_graphs"));
  EXPECT_EQ(double(stats.net_connections),
            m.at("vblock_net_connections_total"));
  EXPECT_EQ(m.at("vblock_net_connections_total"), 0.0);  // no front-end

  // Sanity on the projected values themselves.
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);

  // Latency histogram: every completion delivered to a waiter recorded one
  // sample (invalid requests never enter the histogram).
  const Histogram latency =
      service.metrics().GetHistogram("vblock_request_latency_seconds", "")
          ->Merged();
  EXPECT_EQ(latency.count(), stats.latency_count);
  EXPECT_EQ(stats.latency_count, 4u);

  // The traced solve folded its per-stage time into the registry.
  EXPECT_GT(m.at("vblock_solve_stage_seconds_total{stage=\"select\"}"), 0.0);
  EXPECT_GT(m.at("vblock_solve_stage_calls_total{stage=\"select\"}"), 0.0);

  // Sliding-window rate: completions landed inside the last 60 seconds,
  // and both read paths see the same window.
  EXPECT_GT(stats.qps_60s, 0.0);
  EXPECT_EQ(service.Stats().qps_60s, m.at("vblock_qps_60s"));
}

TEST(ReconcileTest, MetricsNameSetIsFixedAtConstruction) {
  GraphRegistry registry;
  QueryService service(&registry, FastOptions());
  const std::vector<MetricSnapshot> before = service.metrics().Snapshot();
  registry.Add("g", TestGraph());
  ASSERT_TRUE(service.SubmitAndWait(MakeRequest(true)).ok());
  const std::vector<MetricSnapshot> after = service.metrics().Snapshot();
  // No solve registers a new name: the METRICS exposition is structurally
  // stable from the first scrape (the CI smoke diff relies on this).
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].name, after[i].name);
  }
}

}  // namespace
}  // namespace vblock
