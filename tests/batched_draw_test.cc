// Tests for the batched geometric-draw kernel (PR 7): BatchLog accuracy
// against libm, scalar ≡ AVX2 bit-exactness of the transform on shared
// input bits, exact RNG-consumption accounting of FillGeometricSkips, the
// per-kernel cost-model crossovers (the batched kernel batches runs the
// scalar skip kind leaves on per-edge coins, and vice versa for short
// runs), chi-square / marginal distribution checks for kBatchedSkip on
// every cost-model branch, pool ≡ one-shot bit-exactness, and end-to-end
// ISA invariance (forcing the scalar fallback reproduces the AVX2 worlds
// bit-for-bit).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cascade/triggering.h"
#include "common/rng.h"
#include "core/spread_decrease.h"
#include "core/spread_decrease_engine.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "graph/prob_grouped_view.h"
#include "prob/probability_models.h"
#include "sampling/batched_draw.h"
#include "sampling/reachable_sampler.h"

namespace vblock {
namespace {

// Restores the process-wide draw ISA on scope exit so a failing test cannot
// leak a forced implementation into later tests.
struct IsaGuard {
  DrawIsa prev = ActiveDrawIsa();
  ~IsaGuard() { SetDrawIsa(prev); }
};

// Star gadget: root 0 with `fan` leaves, every edge probability p.
Graph StarGraph(VertexId fan, double p) {
  GraphBuilder builder;
  for (VertexId k = 0; k < fan; ++k) builder.AddEdge(0, k + 1, p);
  auto g = builder.Build();
  VBLOCK_CHECK(g.ok());
  return std::move(*g);
}

// --------------------------------------------------------------- BatchLog

TEST(BatchLogTest, MatchesLibmAcrossTheUniformDomain) {
  // The transform only ever evaluates BatchLog on ((x >> 12) | 1) · 2⁻⁵²,
  // i.e. odd multiples of 2⁻⁵² in (0, 1). Sweep random points plus both
  // extremes. Worst case is the √½ mantissa boundary where the truncated
  // atanh series peaks (|s| ≈ 0.1716, truncation 2s¹⁵/15 ≈ 4.5e-13
  // absolute, relative ≈ 1.3e-12); asserted with ~3× headroom.
  auto check = [](double u) {
    const double expected = std::log(u);
    const double tolerance = 4e-12 * std::abs(expected) + 1e-15;
    EXPECT_NEAR(BatchLog(u), expected, tolerance) << "u=" << u;
  };
  check(0x1.0p-52);                    // smallest transform input
  check(1.0 - 0x1.0p-52);              // largest
  check(0.5 - 0x1.0p-53);              // just below a binade boundary
  check(0.5);                          // on it
  check(0x1.6a09e667f3bcdp-1);         // ~√½, the mantissa-split boundary
  Rng rng(123);
  for (int i = 0; i < 200000; ++i) {
    check((((rng() >> 12) | 1u)) * 0x1.0p-52);
  }
}

// --------------------------------------------------- transform bit-exactness

TEST(BatchedTransformTest, ScalarMatchesAvx2BitExactOnSharedBits) {
  if (!internal::Avx2TransformAvailable()) {
    GTEST_SKIP() << "AVX2 transform not available in this build/CPU";
  }
  Rng rng(99);
  for (double p : {0.5, 0.25, 0.08, 0.01, 1e-6}) {
    const double inv_log1m = 1.0 / std::log1p(-p);
    for (uint32_t count : {1u, 3u, 4u, 5u, 17u, 63u, 64u}) {
      uint64_t bits[kMaxDrawBlock];
      rng.NextBlock(bits, count);
      uint64_t scalar[kMaxDrawBlock];
      uint64_t avx2[kMaxDrawBlock];
      internal::TransformGeometricScalar(bits, inv_log1m, count, scalar);
      internal::TransformGeometricAvx2(bits, inv_log1m, count, avx2);
      for (uint32_t i = 0; i < count; ++i) {
        ASSERT_EQ(scalar[i], avx2[i])
            << "p=" << p << " count=" << count << " i=" << i;
      }
    }
  }
}

TEST(BatchedTransformTest, FillMatchesScalarTransformUnderAnyActiveIsa) {
  // FillGeometricSkips = NextBlock + dispatched transform. Whatever ISA is
  // active, the result must equal the scalar reference transform over the
  // same raw bits — this is the determinism contract end to end.
  const double p = 0.1;
  const double inv_log1m = 1.0 / std::log1p(-p);
  Rng fill_rng(7), bits_rng(7);
  uint64_t filled[kMaxDrawBlock];
  FillGeometricSkips(fill_rng, inv_log1m, 37, filled);
  uint64_t bits[kMaxDrawBlock];
  bits_rng.NextBlock(bits, 37);
  uint64_t reference[kMaxDrawBlock];
  internal::TransformGeometricScalar(bits, inv_log1m, 37, reference);
  for (uint32_t i = 0; i < 37; ++i) EXPECT_EQ(filled[i], reference[i]);
}

TEST(BatchedTransformTest, FillConsumesExactlyCountRawOutputs) {
  const double inv_log1m = 1.0 / std::log1p(-0.3);
  for (uint32_t count : {1u, 4u, 29u, 64u}) {
    Rng a(42), b(42);
    uint64_t out[kMaxDrawBlock];
    FillGeometricSkips(a, inv_log1m, count, out);
    for (uint32_t i = 0; i < count; ++i) (void)b();
    EXPECT_EQ(a(), b()) << "count=" << count;
  }
}

TEST(BatchedTransformTest, SetDrawIsaForcesAndRestores) {
  IsaGuard guard;
  ASSERT_TRUE(SetDrawIsa(DrawIsa::kScalar));
  EXPECT_EQ(ActiveDrawIsa(), DrawIsa::kScalar);
  if (internal::Avx2TransformAvailable()) {
    ASSERT_TRUE(SetDrawIsa(DrawIsa::kAvx2));
    EXPECT_EQ(ActiveDrawIsa(), DrawIsa::kAvx2);
  } else {
    EXPECT_FALSE(SetDrawIsa(DrawIsa::kAvx2));
    EXPECT_EQ(ActiveDrawIsa(), DrawIsa::kScalar);
  }
}

// ------------------------------------------------------------ distribution

TEST(FillGeometricSkipsTest, MatchesGeometricMoments) {
  // Same moment check NextGeometric passes: E[skip] = (1-p)/p within 2%.
  for (double p : {0.5, 0.1, 0.01}) {
    const double inv_log1m = 1.0 / std::log1p(-p);
    Rng rng(7);
    double total = 0;
    const int kBlocks = 200000 / kMaxDrawBlock;
    uint64_t out[kMaxDrawBlock];
    for (int i = 0; i < kBlocks; ++i) {
      FillGeometricSkips(rng, inv_log1m, kMaxDrawBlock, out);
      for (uint32_t j = 0; j < kMaxDrawBlock; ++j) {
        total += static_cast<double>(out[j]);
      }
    }
    const double mean = total / (kBlocks * kMaxDrawBlock);
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(mean, expected, 0.02 * expected + 0.01) << "p=" << p;
  }
}

TEST(FillGeometricSkipsTest, SaturatesInsteadOfOverflowing) {
  const double p = 1e-300;
  const double inv_log1m = 1.0 / std::log1p(-p);
  Rng rng(9);
  uint64_t out[kMaxDrawBlock];
  FillGeometricSkips(rng, inv_log1m, kMaxDrawBlock, out);
  for (uint32_t i = 0; i < kMaxDrawBlock; ++i) {
    // Clamped exactly to the 2^50 sentinel — far beyond any run length.
    EXPECT_EQ(out[i], uint64_t{1} << 50);
  }
}

// ------------------------------------------------------- cost-model pinning

TEST(BatchedCostModelTest, DrawBlockForRoundsUpToMultiplesOfFour) {
  using View = ProbGroupedView;
  EXPECT_EQ(View::DrawBlockFor(0.08, 24), 4u);   // E = 2.92
  EXPECT_EQ(View::DrawBlockFor(0.6, 3), 4u);     // E = 2.8
  EXPECT_EQ(View::DrawBlockFor(0.25, 64), 20u);  // E = 17
  EXPECT_EQ(View::DrawBlockFor(0.5, 256), 64u);  // E = 129, clamped
  EXPECT_EQ(View::DrawBlockFor(0.2, 400), 64u);  // E = 81, clamped
  for (double p : {0.01, 0.1, 0.3, 0.7, 0.99}) {
    for (uint32_t len : {1u, 5u, 24u, 64u, 400u}) {
      const uint32_t block = View::DrawBlockFor(p, len);
      EXPECT_EQ(block % 4, 0u) << "p=" << p << " len=" << len;
      EXPECT_GE(block, 4u);
      EXPECT_LE(block, kMaxDrawBlock);
    }
  }
}

TEST(BatchedCostModelTest, PerKernelCrossoversDiverge) {
  using View = ProbGroupedView;
  // A short dense run is coins either way.
  EXPECT_FALSE(View::RunPrefersGeometric(0.6, 3));
  EXPECT_FALSE(View::RunPrefersGeometricBatched(0.6, 3));

  // A long sparse run jumps under the scalar model, but its 2.92 expected
  // draws sit under the kMinExpectedDrawsBatched = 8 amortization gate:
  // one tiny fill would put the whole block transform's latency on the
  // walk's critical path, so the batched kernel keeps the scalar jump for
  // it instead of block fills. (This is the WC-RR mis-selection fixed in
  // this revision: in-runs there expect exactly 2 draws.)
  EXPECT_TRUE(View::RunPrefersGeometric(0.08, 24));
  EXPECT_FALSE(View::RunPrefersGeometricBatched(0.08, 24));
  EXPECT_FALSE(View::RunPrefersGeometricBatched(1.0 / 50.0, 50));  // E = 2
  // Just above the gate the throughput arithmetic takes over again.
  EXPECT_TRUE(View::RunPrefersGeometricBatched(0.25, 40));  // E = 11

  // The headline divergence: L=64 at p=0.25 expects 17 live edges. Scalar
  // draws cost 4.5 coins each (17·4.5 = 76.5 > 64 → per-edge coins) while
  // batched draws cost 2.0 (one 20-draw fill: 20·2 + 2 = 42 < 64 → jump).
  EXPECT_FALSE(View::RunPrefersGeometric(0.25, 64));
  EXPECT_TRUE(View::RunPrefersGeometricBatched(0.25, 64));

  // Divergence the other way: short runs cannot amortize a block fill
  // (every fill costs at least 4·2 + 2 = 10 coins, exactly the length
  // here and NOT strictly less), so WC-style din=10 vertices jump under
  // the scalar kernel but coin under the batched one.
  EXPECT_TRUE(View::RunPrefersGeometric(0.1, 10));
  EXPECT_FALSE(View::RunPrefersGeometricBatched(0.1, 10));

  // Scalar boundary at exactly cost == length: (1 + 9·(1/9))·4.5 = 9 is
  // NOT < 9 — the WC din=9 run stays on coins.
  EXPECT_FALSE(View::RunPrefersGeometric(1.0 / 9.0, 9));

  // Multi-fill territory: E = 81 > 64-draw block. 81/64 fills at 130 coins
  // each is still far below scanning 400 edges...
  EXPECT_TRUE(View::RunPrefersGeometricBatched(0.2, 400));
  // ...but at p=0.5 the expected 129 draws over two fills (262 coins)
  // exceed the 256-edge scan.
  EXPECT_FALSE(View::RunPrefersGeometricBatched(0.5, 256));
}

TEST(BatchedCostModelTest, PerVertexDecisionsFollowTheRunCrossovers) {
  // Single-run stars inherit their run's decision (plus run overhead).
  Graph divergent = StarGraph(64, 0.25);
  EXPECT_FALSE(divergent.GroupedView().OutUsesRunWalk(0));
  EXPECT_TRUE(divergent.GroupedView().OutUsesRunWalkBatched(0));

  Graph sparse = StarGraph(24, 0.08);
  EXPECT_TRUE(sparse.GroupedView().OutUsesRunWalk(0));
  EXPECT_TRUE(sparse.GroupedView().OutUsesRunWalkBatched(0));

  Graph dense = StarGraph(6, 0.35);
  EXPECT_FALSE(dense.GroupedView().OutUsesRunWalk(0));
  EXPECT_FALSE(dense.GroupedView().OutUsesRunWalkBatched(0));
}

// --------------------------------------- kBatchedSkip subset distributions

// Chi-square statistic of observed subset counts against the exact
// product-Bernoulli distribution (as in skip_sampling_test.cc).
double SubsetChiSquare(const std::vector<uint64_t>& counts, VertexId fan,
                       double p, uint64_t rounds) {
  double chi = 0;
  for (size_t mask = 0; mask < counts.size(); ++mask) {
    const int ones = __builtin_popcountll(mask);
    const double prob = std::pow(p, ones) * std::pow(1.0 - p, fan - ones);
    const double expected = prob * static_cast<double>(rounds);
    const double diff = static_cast<double>(counts[mask]) - expected;
    chi += diff * diff / expected;
  }
  return chi;
}

TEST(BatchedSkipDistributionTest, PlainScanBranchMatchesClosedForm) {
  // fan=6 / p=0.35 keeps the batched kernel on its plain-scan branch
  // (pinned above); the 64-cell subset distribution must match the exact
  // product-Bernoulli law (dof 63, 0.999 quantile 103.4, padded).
  const VertexId kFan = 6;
  const double kP = 0.35;
  const uint64_t kRounds = 120000;
  Graph g = StarGraph(kFan, kP);
  ASSERT_FALSE(g.GroupedView().OutUsesRunWalkBatched(0));

  ReachableSampler sampler(g, 0, nullptr, SamplerKind::kBatchedSkip);
  SampledGraph s;
  Rng rng(2024);
  std::vector<uint64_t> counts(size_t{1} << kFan, 0);
  for (uint64_t i = 0; i < kRounds; ++i) {
    sampler.Sample(rng, &s);
    uint64_t mask = 0;
    for (VertexId parent : s.to_parent) {
      if (parent > 0) mask |= uint64_t{1} << (parent - 1);
    }
    ++counts[mask];
  }
  EXPECT_LT(SubsetChiSquare(counts, kFan, kP, kRounds), 110.0);
}

// Shared harness: samples the star root under kBatchedSkip and checks the
// live-edge count histogram against Binomial(fan, p) (head/tail-collapsed
// chi-square) plus every leaf's inclusion frequency at 5 sigma.
void CheckStarBinomial(const Graph& g, VertexId fan, double p,
                       uint64_t rounds, int cell_lo, int cell_hi,
                       double chi_bound, uint64_t seed) {
  ReachableSampler sampler(g, 0, nullptr, SamplerKind::kBatchedSkip);
  SampledGraph s;
  Rng rng(seed);
  std::vector<uint64_t> count_hist(fan + 1, 0);
  std::vector<uint64_t> leaf_hits(fan, 0);
  for (uint64_t i = 0; i < rounds; ++i) {
    sampler.Sample(rng, &s);
    ++count_hist[s.to_parent.size() - 1];  // root excluded
    for (VertexId parent : s.to_parent) {
      if (parent > 0) ++leaf_hits[parent - 1];
    }
  }

  // Binomial pmf built iteratively; cells below cell_lo and above cell_hi
  // collapsed into head/tail cells.
  std::vector<double> pmf(fan + 1);
  pmf[0] = std::pow(1.0 - p, fan);
  for (VertexId k = 0; k < fan; ++k) {
    pmf[k + 1] =
        pmf[k] * static_cast<double>(fan - k) / (k + 1) * (p / (1.0 - p));
  }
  double chi = 0;
  double head_expected = 0, tail_expected = 0;
  uint64_t head_observed = 0, tail_observed = 0;
  for (VertexId k = 0; k <= fan; ++k) {
    const double expected = pmf[k] * static_cast<double>(rounds);
    if (static_cast<int>(k) < cell_lo) {
      head_expected += expected;
      head_observed += count_hist[k];
    } else if (static_cast<int>(k) > cell_hi) {
      tail_expected += expected;
      tail_observed += count_hist[k];
    } else {
      const double diff = static_cast<double>(count_hist[k]) - expected;
      chi += diff * diff / expected;
    }
  }
  if (head_expected > 0) {
    const double diff = static_cast<double>(head_observed) - head_expected;
    chi += diff * diff / head_expected;
  }
  const double tail_diff = static_cast<double>(tail_observed) - tail_expected;
  chi += tail_diff * tail_diff / tail_expected;
  EXPECT_LT(chi, chi_bound);

  const double sigma = std::sqrt(p * (1.0 - p) / static_cast<double>(rounds));
  for (VertexId k = 0; k < fan; ++k) {
    EXPECT_NEAR(static_cast<double>(leaf_hits[k]) / rounds, p, 5.0 * sigma)
        << "leaf " << k;
  }
}

TEST(BatchedSkipDistributionTest, SingleFillJumpBranchMatchesBinomial) {
  // fan=40 / p=0.25 expects 11 draws — above the 8-draw gate, within one
  // 12-draw fill, so every sample is exactly one block fill. Cells
  // {head, 4..17, tail}: dof 15, 0.999 quantile 37.7, padded.
  Graph g = StarGraph(40, 0.25);
  ASSERT_TRUE(g.GroupedView().OutUsesRunWalkBatched(0));
  ASSERT_TRUE(ProbGroupedView::RunPrefersGeometricBatched(0.25, 40));
  ASSERT_EQ(ProbGroupedView::DrawBlockFor(0.25, 40), 12u);
  CheckStarBinomial(g, 40, 0.25, 120000, 4, 17, 42.0, 77);
}

TEST(BatchedSkipDistributionTest, GatedRunFallsBackToScalarJumpBranch) {
  // fan=24 / p=0.08 expects 2.92 draws — UNDER the gate, so the batched
  // kernel walks this run with the scalar geometric jump instead of block
  // fills. The marginals must be the same Binomial either way. Cells
  // {0..7, tail}: dof 8, 0.999 quantile 26.1, padded.
  Graph g = StarGraph(24, 0.08);
  ASSERT_TRUE(g.GroupedView().OutUsesRunWalkBatched(0));
  ASSERT_FALSE(ProbGroupedView::RunPrefersGeometricBatched(0.08, 24));
  ASSERT_TRUE(ProbGroupedView::RunPrefersGeometric(0.08, 24));
  CheckStarBinomial(g, 24, 0.08, 120000, 0, 7, 30.0, 77);
}

TEST(BatchedSkipDistributionTest, DivergentBranchMatchesBinomial) {
  // fan=64 / p=0.25: the run the scalar kernel refuses to jump (pinned in
  // the cost-model test) — exactly the case the batched kernel exists for.
  // Cells {head, 10..22, tail}: dof 14, 0.999 quantile 36.1, padded.
  Graph g = StarGraph(64, 0.25);
  ASSERT_TRUE(g.GroupedView().OutUsesRunWalkBatched(0));
  ASSERT_FALSE(g.GroupedView().OutUsesRunWalk(0));
  CheckStarBinomial(g, 64, 0.25, 60000, 10, 22, 40.0, 2025);
}

TEST(BatchedSkipDistributionTest, MultiFillJumpBranchMatchesBinomial) {
  // fan=400 / p=0.2 expects 81 live edges — beyond one kMaxDrawBlock=64
  // fill, so every sample loops the block-fill walk at least twice. Cells
  // {head, 66..96, tail}: dof 32, 0.999 quantile 62.5, padded.
  Graph g = StarGraph(400, 0.2);
  ASSERT_TRUE(g.GroupedView().OutUsesRunWalkBatched(0));
  ASSERT_TRUE(ProbGroupedView::RunPrefersGeometricBatched(0.2, 400));
  CheckStarBinomial(g, 400, 0.2, 30000, 66, 96, 66.0, 31337);
}

TEST(BatchedSkipDistributionTest, MixedRunGadgetMarginals) {
  // 64 edges at p=0.25 interleaved with 3 at p=0.6: within one batched run
  // walk the low-p run (17 expected draws — over the gate) takes the
  // block-fill jump branch and the high-p run the coin branch; every
  // edge's inclusion frequency must match its own probability.
  GraphBuilder builder;
  std::vector<double> probs;
  for (VertexId k = 0; k < 67; ++k) {
    const double p = (k % 22 == 4) ? 0.6 : 0.25;
    probs.push_back(p);
    builder.AddEdge(0, k + 1, p);
  }
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  const Graph& g = *built;
  ASSERT_TRUE(g.GroupedView().OutUsesRunWalkBatched(0));
  ASSERT_TRUE(ProbGroupedView::RunPrefersGeometricBatched(0.25, 64));
  ASSERT_FALSE(ProbGroupedView::RunPrefersGeometricBatched(0.6, 3));

  const uint64_t kRounds = 60000;
  ReachableSampler sampler(g, 0, nullptr, SamplerKind::kBatchedSkip);
  SampledGraph s;
  Rng rng(101);
  std::vector<uint64_t> hits(67, 0);
  for (uint64_t i = 0; i < kRounds; ++i) {
    sampler.Sample(rng, &s);
    for (VertexId parent : s.to_parent) {
      if (parent > 0) ++hits[parent - 1];
    }
  }
  for (VertexId k = 0; k < 67; ++k) {
    const double sigma = std::sqrt(probs[k] * (1.0 - probs[k]) / kRounds);
    EXPECT_NEAR(static_cast<double>(hits[k]) / kRounds, probs[k], 5.0 * sigma)
        << "edge " << k;
  }
}

TEST(BatchedSkipDistributionTest, TriggeringGroupedMembershipFrequencies) {
  // The in-edge (RR-set / triggering) side of the batched kernel: grouped
  // trigger-set draws under kBatchedSkip must include each in-neighbor
  // index with its edge probability.
  Graph g = WithWeightedCascade(GenerateErdosRenyi(40, 400, 23));
  const ProbGroupedView& view = g.GroupedView();
  IcTriggeringModel model;
  const VertexId v = 1;
  const auto din = static_cast<uint32_t>(g.InDegree(v));
  ASSERT_GT(din, 3u);
  const int kRounds = 60000;

  std::vector<int> hits(din, 0);
  std::vector<uint32_t> set;
  Rng rng(31);
  for (int i = 0; i < kRounds; ++i) {
    set.clear();
    model.SampleTriggerSetGrouped(g, view, v, rng, &set,
                                  SamplerKind::kBatchedSkip);
    for (uint32_t idx : set) ++hits[idx];
  }
  auto probs = g.InProbabilities(v);
  for (uint32_t k = 0; k < din; ++k) {
    const double tolerance = 4.0 * std::sqrt(probs[k] / kRounds) + 1e-3;
    EXPECT_NEAR(static_cast<double>(hits[k]) / kRounds, probs[k], tolerance);
  }
}

// ------------------------------------------------------------- determinism

SpreadDecreaseOptions BatchedOptions(uint32_t theta, uint64_t seed,
                                     SampleReuse reuse,
                                     uint32_t threads = 1) {
  SpreadDecreaseOptions opts;
  opts.theta = theta;
  opts.seed = seed;
  opts.threads = threads;
  opts.sample_reuse = reuse;
  opts.sampler_kind = SamplerKind::kBatchedSkip;
  return opts;
}

TEST(BatchedSkipDeterminismTest, PoolBuildBitExactWithOneShotEstimator) {
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(300, 3, 5));
  for (SampleReuse reuse : {SampleReuse::kResample, SampleReuse::kPrune}) {
    SpreadDecreaseEngine engine(g, 0, BatchedOptions(1200, 13, reuse));
    ASSERT_TRUE(engine.Build());
    SpreadDecreaseResult pooled = engine.Scores();

    SpreadDecreaseResult reference =
        ComputeSpreadDecrease(g, 0, BatchedOptions(1200, 13, reuse));
    ASSERT_EQ(pooled.delta.size(), reference.delta.size());
    for (size_t v = 0; v < reference.delta.size(); ++v) {
      EXPECT_DOUBLE_EQ(pooled.delta[v], reference.delta[v]) << "v=" << v;
    }
    EXPECT_DOUBLE_EQ(pooled.expected_spread, reference.expected_spread);
  }
}

TEST(BatchedSkipDeterminismTest, VisitsDifferentWorldsThanScalarSkip) {
  // kBatchedSkip consumes randomness differently (block fills, custom log)
  // so for one seed it draws different worlds than kGeometricSkip — both
  // i.i.d. Definition-4 samples. Same seed and kind reproduces itself.
  // Constant p=0.25 over a dense ER graph makes each row one ~60-edge run
  // expecting ~16 draws — over the batched kernel's 8-draw gate, so it
  // block-fills where the scalar kernel coin-scans. (Trivalency runs
  // expect ≤ 2–3 draws and now fall back to the identical scalar walk; a
  // WC graph's short out-runs would likewise collapse the two kinds.)
  Graph g = WithConstantProbability(GenerateErdosRenyi(200, 12000, 9), 0.25);
  SpreadDecreaseOptions batched =
      BatchedOptions(4000, 3, SampleReuse::kPrune);
  SpreadDecreaseOptions skip = batched;
  skip.sampler_kind = SamplerKind::kGeometricSkip;

  SpreadDecreaseResult a = ComputeSpreadDecrease(g, 0, batched);
  SpreadDecreaseResult b = ComputeSpreadDecrease(g, 0, batched);
  SpreadDecreaseResult c = ComputeSpreadDecrease(g, 0, skip);
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_DOUBLE_EQ(a.expected_spread, b.expected_spread);
  EXPECT_NE(a.delta, c.delta);  // different worlds ...
  EXPECT_NEAR(a.expected_spread, c.expected_spread,
              0.05 * a.expected_spread);  // ... same distribution
}

TEST(BatchedSkipDeterminismTest, ScalarFallbackReproducesAvx2Worlds) {
  // The whole point of the shared BatchLog: forcing the scalar transform
  // must leave every sampled world — and therefore every score — bit-
  // identical to the AVX2 path.
  if (!internal::Avx2TransformAvailable()) {
    GTEST_SKIP() << "AVX2 transform not available in this build/CPU";
  }
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(250, 3, 7));
  const SpreadDecreaseOptions opts =
      BatchedOptions(2000, 17, SampleReuse::kPrune);

  IsaGuard guard;
  ASSERT_TRUE(SetDrawIsa(DrawIsa::kAvx2));
  SpreadDecreaseResult vector_result = ComputeSpreadDecrease(g, 0, opts);
  ASSERT_TRUE(SetDrawIsa(DrawIsa::kScalar));
  SpreadDecreaseResult scalar_result = ComputeSpreadDecrease(g, 0, opts);

  EXPECT_EQ(vector_result.delta, scalar_result.delta);
  EXPECT_DOUBLE_EQ(vector_result.expected_spread,
                   scalar_result.expected_spread);
}

}  // namespace
}  // namespace vblock
