// Tests for the RIS substrate: Borgs' lemma on the golden fixture, and the
// paper's §V-B1 argument that RR sets score seeds, not blockers.

#include <gtest/gtest.h>

#include "cascade/monte_carlo.h"
#include "cascade/rr_sets.h"
#include "core/spread_decrease.h"
#include "gen/generators.h"
#include "prob/probability_models.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

using testing::PaperFigure1Graph;

TEST(RrSetTest, MembershipProbabilityEqualsActivationProbability) {
  // Borgs: Pr[s ∈ RR(v)] = P_G(v, {s}). On the toy graph
  // P(v8|{v1}) = 0.6 and P(v7|{v1}) = 0.06.
  Graph g = PaperFigure1Graph();
  RrSetGenerator gen(g);
  std::vector<VertexId> rr;
  int v8_hits = 0, v7_hits = 0;
  const int kRounds = 100000;
  for (int i = 0; i < kRounds; ++i) {
    Rng rng(MixSeed(3, i));
    gen.Sample(testing::kV8, rng, &rr);
    for (VertexId v : rr) v8_hits += (v == testing::kV1);
    gen.Sample(testing::kV7, rng, &rr);
    for (VertexId v : rr) v7_hits += (v == testing::kV1);
  }
  EXPECT_NEAR(static_cast<double>(v8_hits) / kRounds, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(v7_hits) / kRounds, 0.06, 0.005);
}

TEST(RrSetTest, SpreadEstimateMatchesExample1) {
  Graph g = PaperFigure1Graph();
  double estimate = EstimateSpreadViaRrSets(g, {testing::kV1}, 200000, 7);
  EXPECT_NEAR(estimate, 7.66, 0.05);
}

TEST(RrSetTest, CertainChainRrSetIsPrefix) {
  Graph g = testing::PathGraph(6, 1.0);
  RrSetGenerator gen(g);
  std::vector<VertexId> rr;
  Rng rng(5);
  gen.Sample(3, rng, &rr);
  // All of 0..3 reach 3 with certainty.
  EXPECT_EQ(rr.size(), 4u);
}

TEST(RrSetTest, MultiSeedSpreadEstimate) {
  Graph g = WithWeightedCascade(GenerateBarabasiAlbert(300, 3, 9));
  std::vector<VertexId> seeds = {0, 5, 10};
  double ris = EstimateSpreadViaRrSets(g, seeds, 200000, 11);
  MonteCarloOptions mc;
  mc.rounds = 50000;
  mc.seed = 13;
  double mcs = EstimateSpread(g, seeds, mc);
  EXPECT_NEAR(ris, mcs, 0.05 * mcs + 0.3);
}

TEST(RrSetTest, WhyRisCannotScoreBlockers) {
  // §V-B1, demonstrated concretely: RR-membership frequency of a vertex u
  // equals E({u},G)/n — its value AS A SEED — which can be arbitrarily far
  // from its value as a blocker. On the toy graph v2 and v3 are EQUAL
  // blockers (Δ = 1 each, exactly), yet as seeds v2 is worth 6.66 and v3
  // only 1.0: an RIS-style ranking would wrongly prefer v2 by >4x.
  Graph g = PaperFigure1Graph();

  // Equal blocker value (exact).
  auto deltas = ComputeSpreadDecreaseExact(g, testing::kV1);
  ASSERT_TRUE(deltas.ok());
  EXPECT_DOUBLE_EQ(deltas->delta[testing::kV2], deltas->delta[testing::kV3]);

  // Very different RR-membership mass.
  RrSetGenerator gen(g);
  std::vector<VertexId> rr;
  std::vector<int> membership(g.NumVertices(), 0);
  const int kRounds = 60000;
  for (int i = 0; i < kRounds; ++i) {
    Rng rng(MixSeed(17, i));
    gen.SampleRandomTarget(rng, &rr);
    for (VertexId v : rr) ++membership[v];
  }
  // Seed-value ranking puts v1 on top (reaches everything)…
  for (VertexId v = 1; v < g.NumVertices(); ++v) {
    EXPECT_GE(membership[testing::kV1], membership[v]);
  }
  // …and separates the equal-as-blockers v2/v3 by the seed-value factor
  // E({v2}) / E({v3}) = 6.66.
  const double ratio = static_cast<double>(membership[testing::kV2]) /
                       std::max(1, membership[testing::kV3]);
  EXPECT_GT(ratio, 4.0);
}

}  // namespace
}  // namespace vblock
