// Unit tests for graph IO: SNAP edge lists (text) and the binary format.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "graph/graph_io.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(EdgeListTest, ParsesBasicSnapFormat) {
  const std::string text =
      "# Directed graph: example\n"
      "# FromNodeId ToNodeId\n"
      "0\t1\n"
      "1\t2\n"
      "0\t2\n";
  auto g = ReadEdgeListFromString(text);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  EXPECT_DOUBLE_EQ(g->OutProbabilities(0)[0], 1.0);
}

TEST(EdgeListTest, ParsesProbabilityColumn) {
  auto g = ReadEdgeListFromString("0 1 0.25\n1 2 0.5\n");
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->OutProbabilities(0)[0], 0.25);
  EXPECT_DOUBLE_EQ(g->OutProbabilities(1)[0], 0.5);
}

TEST(EdgeListTest, UndirectedOptionDoublesEdges) {
  EdgeListReadOptions opts;
  opts.undirected = true;
  auto g = ReadEdgeListFromString("0 1\n", opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST(EdgeListTest, CompactIdsRenumbersSparseIds) {
  auto g = ReadEdgeListFromString("1000000 2000000\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 2u);  // not 2000001
}

TEST(EdgeListTest, NonCompactKeepsRawIds) {
  EdgeListReadOptions opts;
  opts.compact_ids = false;
  auto g = ReadEdgeListFromString("5 7\n", opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 8u);
}

TEST(EdgeListTest, PercentCommentsAccepted) {
  auto g = ReadEdgeListFromString("% matrix market style\n0 1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(EdgeListTest, MalformedLineReportsLineNumber) {
  auto g = ReadEdgeListFromString("0 1\nnot numbers here\n");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
  EXPECT_NE(g.status().message().find(":2"), std::string::npos);
}

TEST(EdgeListTest, SingleFieldLineIsError) {
  auto g = ReadEdgeListFromString("42\n");
  EXPECT_FALSE(g.ok());
}

TEST(EdgeListTest, MalformedProbabilityIsError) {
  auto g = ReadEdgeListFromString("0 1 huh\n");
  EXPECT_FALSE(g.ok());
}

TEST(EdgeListTest, MissingFileIsIoError) {
  auto g = ReadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(EdgeListTest, WriteReadRoundTrip) {
  Graph g = testing::PaperFigure1Graph();
  const std::string path = TempPath("vblock_roundtrip.txt");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  EdgeListReadOptions opts;
  opts.compact_ids = false;
  auto g2 = ReadEdgeList(path, opts);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->CollectEdges(), g.CollectEdges());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTrip) {
  Graph g = testing::PaperFigure1Graph();
  const std::string path = TempPath("vblock_roundtrip.bin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  auto g2 = ReadBinary(path);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->CollectEdges(), g.CollectEdges());
  EXPECT_EQ(g2->NumVertices(), g.NumVertices());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("vblock_bad_magic.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[32] = "this is not a graph file";
    fwrite(junk, 1, sizeof junk, f);
    fclose(f);
  }
  auto g = ReadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("not a vblock binary"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsTruncatedFile) {
  Graph g = testing::PaperFigure1Graph();
  const std::string path = TempPath("vblock_truncated.bin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  std::filesystem::resize_file(path, 30);  // cut mid-header/edges
  auto g2 = ReadBinary(path);
  EXPECT_FALSE(g2.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vblock
