// Unit tests for the triggering-model framework (paper §V-E): IC-as-
// triggering equivalence and LT semantics.

#include <gtest/gtest.h>

#include "cascade/monte_carlo.h"
#include "cascade/triggering.h"
#include "gen/generators.h"
#include "prob/probability_models.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

using testing::PaperFigure1Graph;
using testing::PathGraph;

TEST(IcTriggeringTest, TriggerSetFrequencyMatchesEdgeProbability) {
  Graph g = PaperFigure1Graph();
  IcTriggeringModel model;
  Rng rng(1);
  std::vector<uint32_t> set;
  // v8 has in-edges from v5 (0.5) and v9 (0.2).
  int v5_hits = 0, v9_hits = 0;
  const int kRounds = 50000;
  auto in = g.InNeighbors(testing::kV8);
  ASSERT_EQ(in.size(), 2u);
  for (int i = 0; i < kRounds; ++i) {
    set.clear();
    model.SampleTriggerSet(g, testing::kV8, rng, &set);
    for (uint32_t idx : set) {
      if (in[idx] == testing::kV5) ++v5_hits;
      if (in[idx] == testing::kV9) ++v9_hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(v5_hits) / kRounds, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(v9_hits) / kRounds, 0.2, 0.01);
}

TEST(IcTriggeringTest, CascadeMatchesDirectIcSimulation) {
  // The IC triggering model must reproduce the IC expected spread.
  Graph g = PaperFigure1Graph();
  IcTriggeringModel model;
  double spread =
      EstimateTriggeringSpread(g, model, {testing::kV1}, 100000, 17);
  EXPECT_NEAR(spread, 7.66, 0.03);
}

TEST(IcTriggeringTest, RespectsBlockers) {
  Graph g = PaperFigure1Graph();
  IcTriggeringModel model;
  VertexMask blocked(g.NumVertices());
  blocked.Set(testing::kV5);
  double spread =
      EstimateTriggeringSpread(g, model, {testing::kV1}, 5000, 3, &blocked);
  EXPECT_NEAR(spread, 3.0, 1e-9);
}

TEST(LtTriggeringTest, RejectsOverweightedGraph) {
  // All-probability-1 graph with in-degree 2 violates Σw ≤ 1.
  Graph g = testing::DiamondGraph();
  EXPECT_DEATH(LtTriggeringModel model(g), "LT weights");
}

TEST(LtTriggeringTest, AcceptsWeightedCascade) {
  Graph g = WithWeightedCascade(testing::DiamondGraph());
  LtTriggeringModel model(g);  // must not abort
  SUCCEED();
}

TEST(LtTriggeringTest, AtMostOneTrigger) {
  Graph g = WithWeightedCascade(GenerateErdosRenyi(50, 400, 1));
  LtTriggeringModel model(g);
  Rng rng(5);
  std::vector<uint32_t> set;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (int i = 0; i < 20; ++i) {
      set.clear();
      model.SampleTriggerSet(g, v, rng, &set);
      EXPECT_LE(set.size(), 1u);
    }
  }
}

TEST(LtTriggeringTest, SelectionFrequencyMatchesWeights) {
  // Vertex with two in-edges of WC weight 0.5 each: either chosen ~50%.
  Graph g = WithWeightedCascade(testing::DiamondGraph());
  LtTriggeringModel model(g);
  Rng rng(6);
  std::vector<uint32_t> set;
  int chose[2] = {0, 0}, empty = 0;
  const int kRounds = 40000;
  for (int i = 0; i < kRounds; ++i) {
    set.clear();
    model.SampleTriggerSet(g, 3, rng, &set);  // vertex 3 has preds 1 and 2
    if (set.empty()) {
      ++empty;
    } else {
      ++chose[set[0]];
    }
  }
  EXPECT_NEAR(static_cast<double>(chose[0]) / kRounds, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(chose[1]) / kRounds, 0.5, 0.01);
  EXPECT_EQ(empty, 0);  // weights sum to exactly 1
}

TEST(LtTriggeringTest, PathSpreadUnderLt) {
  // On a path, WC gives every edge weight 1 → LT always propagates.
  Graph g = WithWeightedCascade(PathGraph(7, 0.123));
  LtTriggeringModel model(g);
  double spread = EstimateTriggeringSpread(g, model, {0}, 200, 9);
  EXPECT_DOUBLE_EQ(spread, 7.0);
}

TEST(TriggeringCascadeTest, SeedsCounted) {
  Graph g = WithWeightedCascade(PathGraph(5, 1.0));
  LtTriggeringModel model(g);
  Rng rng(11);
  EXPECT_EQ(RunTriggeringCascade(g, model, {4}, rng), 1u);
}

}  // namespace
}  // namespace vblock
