// Copyright (c) the vblock authors. Licensed under the MIT license.
//
// Regression tests for the stdin REPL's shutdown contract (RunRepl):
// EOF mid-line executes the final command and still flushes its reply,
// QUIT stops the loop, echo mode prefixes commands, and the exit code
// distinguishes clean EOF from stream failure.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "service/protocol.h"

namespace vblock {
namespace {

ServiceOptions FastOptions() {
  ServiceOptions options;
  options.num_threads = 1;
  return options;
}

TEST(RunReplTest, EofMidLineExecutesFinalCommandAndFlushes) {
  // The last command has NO trailing newline: its reply must not be lost.
  std::istringstream in("EVICT POOLS\nSTATS");
  std::ostringstream out;
  ServiceSession session(FastOptions());
  const int rc = RunRepl(in, out, &session);
  EXPECT_EQ(rc, 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("OK evicted=0\n"), std::string::npos);
  EXPECT_NE(text.find("OK graphs=0"), std::string::npos);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(RunReplTest, QuitStopsBeforeLaterLines) {
  std::istringstream in("QUIT\nSTATS\n");
  std::ostringstream out;
  ServiceSession session(FastOptions());
  EXPECT_EQ(RunRepl(in, out, &session), 0);
  EXPECT_EQ(out.str(), "OK bye\n");
  EXPECT_TRUE(session.done());
}

TEST(RunReplTest, BlankAndCommentLinesProduceNoOutput) {
  std::istringstream in("\n# a comment\n   \n");
  std::ostringstream out;
  ServiceSession session(FastOptions());
  EXPECT_EQ(RunRepl(in, out, &session), 0);
  EXPECT_EQ(out.str(), "");
}

TEST(RunReplTest, EchoPrefixesEveryInputLine) {
  std::istringstream in("EVICT POOLS\n");
  std::ostringstream out;
  ServiceSession session(FastOptions());
  EXPECT_EQ(RunRepl(in, out, &session, /*echo=*/true), 0);
  EXPECT_EQ(out.str(), "> EVICT POOLS\nOK evicted=0\n");
}

TEST(RunReplTest, EmptyInputIsCleanShutdown) {
  std::istringstream in("");
  std::ostringstream out;
  ServiceSession session(FastOptions());
  EXPECT_EQ(RunRepl(in, out, &session), 0);
  EXPECT_EQ(out.str(), "");
}

TEST(RunReplTest, MetricsEmitsTerminatedExposition) {
  // METRICS is the protocol's only multi-line response; the REPL writes
  // the body verbatim and its "# EOF" terminator gets the final newline.
  std::istringstream in("METRICS\nEVICT POOLS\n");
  std::ostringstream out;
  ServiceSession session(FastOptions());
  EXPECT_EQ(RunRepl(in, out, &session), 0);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("# HELP ", 0), 0u) << text.substr(0, 40);
  EXPECT_NE(text.find("\nvblock_requests_submitted_total 0\n"),
            std::string::npos);
  // The command after the exposition still gets its own reply line.
  EXPECT_NE(text.find("\n# EOF\nOK evicted=0\n"), std::string::npos);
}

TEST(RunReplTest, ErrorResponsesStillCountAsCleanExit) {
  std::istringstream in("FROB\nSOLVE missing SEEDS 1");
  std::ostringstream out;
  ServiceSession session(FastOptions());
  EXPECT_EQ(RunRepl(in, out, &session), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("ERR InvalidArgument unknown command 'FROB'\n"),
            std::string::npos);
  EXPECT_NE(text.find("ERR NotFound no graph named 'missing'\n"),
            std::string::npos);
}

}  // namespace
}  // namespace vblock
