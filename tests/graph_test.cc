// Unit tests for src/graph: builder, CSR accessors, vertex mask, traversal,
// induced subgraphs.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "graph/vertex_mask.h"
#include "testing/toy_graphs.h"

namespace vblock {
namespace {

using testing::DiamondGraph;
using testing::PaperFigure1Graph;
using testing::PathGraph;

// --------------------------------------------------------------- Builder --

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 0u);
  EXPECT_EQ(g->NumEdges(), 0u);
}

TEST(GraphBuilderTest, IsolatedVerticesViaReserve) {
  GraphBuilder b;
  b.ReserveVertices(5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 5u);
  EXPECT_EQ(g->NumEdges(), 0u);
  EXPECT_EQ(g->OutDegree(4), 0u);
}

TEST(GraphBuilderTest, BasicAdjacency) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(0, 2, 0.25);
  b.AddEdge(2, 1, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  EXPECT_EQ(g->OutDegree(0), 2u);
  EXPECT_EQ(g->InDegree(1), 2u);
  auto n0 = g->OutNeighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  auto p0 = g->OutProbabilities(0);
  EXPECT_DOUBLE_EQ(p0[0], 0.5);
  EXPECT_DOUBLE_EQ(p0[1], 0.25);
}

TEST(GraphBuilderTest, InAdjacencyMatchesOutAdjacency) {
  Graph g = PaperFigure1Graph();
  // Every out-edge (u,v,p) must appear as an in-edge of v with the same p.
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto targets = g.OutNeighbors(u);
    auto probs = g.OutProbabilities(u);
    for (size_t k = 0; k < targets.size(); ++k) {
      auto in = g.InNeighbors(targets[k]);
      auto in_p = g.InProbabilities(targets[k]);
      bool found = false;
      for (size_t j = 0; j < in.size(); ++j) {
        if (in[j] == u && in_p[j] == probs[k]) found = true;
      }
      EXPECT_TRUE(found) << "edge " << u << "->" << targets[k];
    }
  }
}

TEST(GraphBuilderTest, SelfLoopsDroppedByDefault) {
  GraphBuilder b;
  b.AddEdge(0, 0, 1.0);
  b.AddEdge(0, 1, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(GraphBuilderTest, SelfLoopsKeptWhenConfigured) {
  GraphBuilder::Options opts;
  opts.drop_self_loops = false;
  GraphBuilder b(opts);
  b.AddEdge(0, 0, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(GraphBuilderTest, ParallelEdgesMergeWithNoisyOr) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(0, 1, 0.5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  // 1 - 0.5*0.5 = 0.75.
  EXPECT_DOUBLE_EQ(g->OutProbabilities(0)[0], 0.75);
}

TEST(GraphBuilderTest, UndirectedEdgeAddsBothDirections) {
  GraphBuilder b;
  b.AddUndirectedEdge(0, 1, 0.3);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 2u);
  EXPECT_EQ(g->OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g->OutNeighbors(1)[0], 0u);
}

TEST(GraphBuilderTest, RejectsOutOfRangeProbability) {
  GraphBuilder b;
  b.AddEdge(0, 1, 1.5);
  auto g = b.Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, NegativeProbabilityRejected) {
  GraphBuilder b;
  b.AddEdge(0, 1, -0.1);
  EXPECT_FALSE(b.Build().ok());
}

TEST(GraphTest, CollectEdgesRoundTrip) {
  Graph g = PaperFigure1Graph();
  auto edges = g.CollectEdges();
  EXPECT_EQ(edges.size(), g.NumEdges());
  GraphBuilder b;
  b.ReserveVertices(g.NumVertices());
  for (const Edge& e : edges) b.AddEdge(e.source, e.target, e.probability);
  auto g2 = b.Build();
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->CollectEdges(), edges);
}

TEST(GraphTest, DegreeStatistics) {
  Graph g = PaperFigure1Graph();
  EXPECT_EQ(g.NumVertices(), 9u);
  EXPECT_EQ(g.NumEdges(), 10u);
  // v5 has out-degree 4 (v3,v6,v9,v8) and in-degree 2 (v2,v4).
  EXPECT_EQ(g.OutDegree(testing::kV5), 4u);
  EXPECT_EQ(g.InDegree(testing::kV5), 2u);
  EXPECT_EQ(g.MaxTotalDegree(), 6u);  // v5
  EXPECT_DOUBLE_EQ(g.AverageTotalDegree(), 20.0 / 9.0);
}

TEST(GraphTest, TotalProbabilityMass) {
  Graph g = PaperFigure1Graph();
  // 7 edges of p=1 plus 0.5 + 0.2 + 0.1.
  EXPECT_NEAR(g.TotalProbabilityMass(), 7.8, 1e-12);
}

// ------------------------------------------------------------ VertexMask --

TEST(VertexMaskTest, SetTestClear) {
  VertexMask m(100);
  EXPECT_FALSE(m.Test(63));
  m.Set(63);
  m.Set(64);
  EXPECT_TRUE(m.Test(63));
  EXPECT_TRUE(m.Test(64));
  EXPECT_FALSE(m.Test(65));
  m.Clear(63);
  EXPECT_FALSE(m.Test(63));
  EXPECT_EQ(m.Count(), 1u);
}

TEST(VertexMaskTest, CountAndToVector) {
  VertexMask m(10);
  m.Set(1);
  m.Set(5);
  m.Set(9);
  EXPECT_EQ(m.Count(), 3u);
  EXPECT_EQ(m.ToVector(), (std::vector<VertexId>{1, 5, 9}));
  m.Reset();
  EXPECT_EQ(m.Count(), 0u);
}

TEST(VertexMaskTest, FromVertices) {
  auto m = VertexMask::FromVertices(8, {2, 4});
  EXPECT_TRUE(m.Test(2));
  EXPECT_TRUE(m.Test(4));
  EXPECT_FALSE(m.Test(3));
}

// ------------------------------------------------------------- Traversal --

TEST(TraversalTest, ReachableFromPath) {
  Graph g = PathGraph(6);
  EXPECT_EQ(CountReachable(g, 0), 6u);
  EXPECT_EQ(CountReachable(g, 3), 3u);
}

TEST(TraversalTest, BlockedVertexCutsPath) {
  Graph g = PathGraph(6);
  VertexMask blocked(6);
  blocked.Set(3);
  EXPECT_EQ(CountReachable(g, 0, &blocked), 3u);  // 0,1,2
}

TEST(TraversalTest, BlockedSourceIsEmpty) {
  Graph g = PathGraph(4);
  VertexMask blocked(4);
  blocked.Set(0);
  EXPECT_EQ(CountReachable(g, 0, &blocked), 0u);
}

TEST(TraversalTest, MultiSourceUnion) {
  // Two disjoint paths: 0->1, 2->3.
  GraphBuilder b;
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto reach = ReachableFromSet(*g, {0, 2});
  EXPECT_EQ(reach.size(), 4u);
}

TEST(TraversalTest, DfsPreorderVisitsAllReachable) {
  Graph g = PaperFigure1Graph();
  auto order = DfsPreorder(g, testing::kV1);
  EXPECT_EQ(order.size(), 9u);
  EXPECT_EQ(order[0], testing::kV1);
  // Every vertex appears exactly once.
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < 9; ++v) EXPECT_EQ(sorted[v], v);
}

TEST(TraversalTest, ReachabilityIgnoresProbabilities) {
  // Traversal is deterministic: p=0.001 edges still count as present.
  Graph g = PathGraph(5, 0.001);
  EXPECT_EQ(CountReachable(g, 0), 5u);
}

// -------------------------------------------------------------- Subgraph --

TEST(SubgraphTest, InducedKeepsInternalEdgesOnly) {
  Graph g = PaperFigure1Graph();
  Subgraph sub = InducedSubgraph(g, {testing::kV1, testing::kV2, testing::kV5});
  EXPECT_EQ(sub.graph.NumVertices(), 3u);
  // Internal edges: v1->v2, v2->v5 (v4->v5 and v5->... leave the set).
  EXPECT_EQ(sub.graph.NumEdges(), 2u);
  // Mappings are mutually inverse.
  for (VertexId local = 0; local < sub.graph.NumVertices(); ++local) {
    EXPECT_EQ(sub.to_local[sub.to_parent[local]], local);
  }
}

TEST(SubgraphTest, InducedPreservesProbabilities) {
  Graph g = PaperFigure1Graph();
  Subgraph sub =
      InducedSubgraph(g, {testing::kV5, testing::kV8, testing::kV9});
  // Edges v5->v8 (0.5), v5->v9 (1.0), v9->v8 (0.2).
  EXPECT_EQ(sub.graph.NumEdges(), 3u);
  double mass = sub.graph.TotalProbabilityMass();
  EXPECT_NEAR(mass, 1.7, 1e-12);
}

TEST(SubgraphTest, DuplicateInputIdsIgnored) {
  Graph g = PaperFigure1Graph();
  Subgraph sub = InducedSubgraph(g, {testing::kV1, testing::kV1, testing::kV2});
  EXPECT_EQ(sub.graph.NumVertices(), 2u);
}

TEST(SubgraphTest, RemoveVerticesComplement) {
  Graph g = PathGraph(5);
  VertexMask blocked(5);
  blocked.Set(2);
  Subgraph sub = RemoveVertices(g, blocked);
  EXPECT_EQ(sub.graph.NumVertices(), 4u);
  EXPECT_EQ(sub.graph.NumEdges(), 2u);  // 0->1 and 3->4 survive
  EXPECT_EQ(sub.to_local[2], kInvalidVertex);
}

TEST(SubgraphTest, ExtractNeighborhoodRespectsTargetSize) {
  Graph g = PaperFigure1Graph();
  Subgraph sub = ExtractNeighborhood(g, testing::kV1, 4);
  EXPECT_EQ(sub.graph.NumVertices(), 4u);
  // Start vertex is always a member.
  EXPECT_NE(sub.to_local[testing::kV1], kInvalidVertex);
}

TEST(SubgraphTest, ExtractNeighborhoodUsesInAndOutEdges) {
  // 1 -> 0 only; starting from 0 must still pull 1 via the in-edge.
  GraphBuilder b;
  b.AddEdge(1, 0, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Subgraph sub = ExtractNeighborhood(*g, 0, 2);
  EXPECT_EQ(sub.graph.NumVertices(), 2u);
}

}  // namespace
}  // namespace vblock
