// Encodes the paper's Theorem-1 reduction (Densest-k-Subgraph → IMIN) and
// verifies the claimed correspondence on small instances: blocking the
// C-vertices of a vertex set A decreases the expected spread by exactly
// |A| + (number of edges induced by A).

#include <gtest/gtest.h>

#include <vector>

#include "cascade/exact_spread.h"
#include "core/exact_blocker.h"
#include "graph/graph_builder.h"
#include "graph/vertex_mask.h"

namespace vblock {
namespace {

// An undirected DKS instance.
struct DksInstance {
  VertexId n;
  std::vector<std::pair<VertexId, VertexId>> edges;
};

// The paper's construction: seed S (id 0), C-part c_i (ids 1..n), D-part
// d_j (ids n+1..n+m). Edges: S→c_i for all i; c_x→d_j and c_y→d_j for each
// DKS edge e_j=(x,y). All probabilities 1.
struct ImimReduction {
  Graph graph;
  VertexId seed = 0;
  VertexId c_base = 1;
  VertexId d_base;
};

ImimReduction BuildReduction(const DksInstance& inst) {
  ImimReduction red;
  red.d_base = 1 + inst.n;
  GraphBuilder b;
  b.ReserveVertices(1 + inst.n + static_cast<VertexId>(inst.edges.size()));
  for (VertexId i = 0; i < inst.n; ++i) b.AddEdge(0, red.c_base + i, 1.0);
  for (size_t j = 0; j < inst.edges.size(); ++j) {
    auto [x, y] = inst.edges[j];
    b.AddEdge(red.c_base + x, red.d_base + static_cast<VertexId>(j), 1.0);
    b.AddEdge(red.c_base + y, red.d_base + static_cast<VertexId>(j), 1.0);
  }
  auto g = b.Build();
  VBLOCK_CHECK(g.ok());
  red.graph = std::move(g.value());
  return red;
}

int InducedEdgeCount(const DksInstance& inst, const std::vector<VertexId>& a) {
  std::vector<uint8_t> in_a(inst.n, 0);
  for (VertexId v : a) in_a[v] = 1;
  int count = 0;
  for (auto [x, y] : inst.edges) count += (in_a[x] && in_a[y]);
  return count;
}

// The paper's Figure-2 example: 4 vertices, 4 edges.
DksInstance Figure2Instance() {
  return DksInstance{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
}

TEST(HardnessReductionTest, BaseSpreadIsWholeGraph) {
  // All probabilities 1: the seed reaches everything.
  ImimReduction red = BuildReduction(Figure2Instance());
  auto spread = ComputeExactSpread(red.graph, {red.seed});
  ASSERT_TRUE(spread.ok());
  EXPECT_DOUBLE_EQ(*spread, 9.0);  // 1 + 4 + 4
}

TEST(HardnessReductionTest, BlockingAMatchesClaimedDecrease) {
  // Decrease from blocking {c_i : i ∈ A} must equal |A| + g where g is the
  // number of DKS edges induced by A (proof of Theorem 1).
  DksInstance inst = Figure2Instance();
  ImimReduction red = BuildReduction(inst);
  const double base = 9.0;
  // Every subset A of the 4 DKS vertices.
  for (uint32_t bits = 1; bits < 16; ++bits) {
    std::vector<VertexId> a;
    VertexMask mask(red.graph.NumVertices());
    for (VertexId i = 0; i < 4; ++i) {
      if ((bits >> i) & 1) {
        a.push_back(i);
        mask.Set(red.c_base + i);
      }
    }
    auto spread = ComputeExactSpread(red.graph, {red.seed}, &mask);
    ASSERT_TRUE(spread.ok());
    const double decrease = base - *spread;
    EXPECT_DOUBLE_EQ(decrease, a.size() + InducedEdgeCount(inst, a))
        << "A bits=" << bits;
  }
}

TEST(HardnessReductionTest, OptimalImimBlockersSolveDks) {
  // For k=2, the densest 2-subgraph of the 4-cycle has 1 edge; the IMIN
  // optimum on the reduction must block two C-vertices that are adjacent in
  // the cycle.
  DksInstance inst = Figure2Instance();
  ImimReduction red = BuildReduction(inst);
  ExactSearchOptions opts;
  opts.budget = 2;
  opts.evaluation.prefer_exact = true;
  auto result = ExactBlockerSearch(red.graph, {red.seed}, opts);
  ASSERT_EQ(result.blockers.size(), 2u);
  // Optimal spread = 9 − (2 + 1) = 6.
  EXPECT_DOUBLE_EQ(result.spread, 6.0);
  // The blocked pair corresponds to adjacent DKS vertices.
  std::vector<VertexId> a;
  for (VertexId b : result.blockers) {
    ASSERT_GE(b, red.c_base);
    ASSERT_LT(b, red.d_base);
    a.push_back(b - red.c_base);
  }
  EXPECT_EQ(InducedEdgeCount(inst, a), 1);
}

TEST(HardnessReductionTest, TriangleInstanceOptimum) {
  // Triangle + isolated vertex, k=3: best A is the triangle (3 edges);
  // optimal decrease = 3 + 3 = 6.
  DksInstance inst{4, {{0, 1}, {1, 2}, {2, 0}}};
  ImimReduction red = BuildReduction(inst);
  ExactSearchOptions opts;
  opts.budget = 3;
  opts.evaluation.prefer_exact = true;
  auto result = ExactBlockerSearch(red.graph, {red.seed}, opts);
  // Base spread: 1 + 4 + 3 = 8; optimum 8 − 6 = 2.
  EXPECT_DOUBLE_EQ(result.spread, 2.0);
  std::vector<VertexId> a;
  for (VertexId b : result.blockers) a.push_back(b - red.c_base);
  EXPECT_EQ(InducedEdgeCount(inst, a), 3);
}

TEST(HardnessReductionTest, BlockingDVerticesIsNeverBetter) {
  // The proof notes blocking d-vertices only removes themselves; verify a
  // d-blocker decreases the spread by exactly 1.
  DksInstance inst = Figure2Instance();
  ImimReduction red = BuildReduction(inst);
  for (VertexId j = 0; j < 4; ++j) {
    VertexMask mask(red.graph.NumVertices());
    mask.Set(red.d_base + j);
    auto spread = ComputeExactSpread(red.graph, {red.seed}, &mask);
    ASSERT_TRUE(spread.ok());
    EXPECT_DOUBLE_EQ(9.0 - *spread, 1.0);
  }
}

}  // namespace
}  // namespace vblock
