#!/usr/bin/env python3
"""Validate a Prometheus text exposition scraped from vblock_serve METRICS.

Stdlib-only; CI pipes the METRICS response body (everything the server
emitted for the command, including the trailing "# EOF") through this
script and fails the job on any violation:

  * every sample line parses (name, optional {labels}, float value)
  * each family is preceded by exactly one # HELP and one # TYPE pair,
    with a known type, and all of a family's samples are contiguous
  * counter families end in _total
  * histogram families expand into _bucket/_sum/_count, bucket bounds
    strictly increase, cumulative counts never decrease, and the +Inf
    bucket equals _count
  * the final line is the "# EOF" terminator

Usage: check_prometheus.py [FILE]     (reads stdin when FILE is absent)
Exit status: 0 valid, 1 invalid, 2 usage.
"""

import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
# name, optional {label="value",...} block, single space, value token.
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S.*)$"
)
LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$'
)
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(lineno, line, why):
    sys.stderr.write(
        "check_prometheus: line %d: %s\n  %s\n" % (lineno, why, line)
    )
    sys.exit(1)


def parse_value(token):
    if token in ("+Inf", "Inf"):
        return math.inf
    if token == "-Inf":
        return -math.inf
    try:
        return float(token)
    except ValueError:
        return None


def parse_labels(block, lineno, line):
    """'{a="x",b="y"}' -> dict; label values may contain escaped quotes."""
    inner = block[1:-1]
    if not inner:
        return {}
    labels = {}
    # Split on commas that are outside quotes.
    parts, depth, cur = [], False, ""
    for ch in inner:
        if ch == '"' and not cur.endswith("\\"):
            depth = not depth
        if ch == "," and not depth:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    parts.append(cur)
    for part in parts:
        if not LABEL_RE.match(part):
            fail(lineno, line, "malformed label pair %r" % part)
        key, value = part.split("=", 1)
        labels[key] = value[1:-1]
    return labels


def family_of(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) > 2:
        sys.stderr.write(__doc__)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    lines = text.splitlines()
    if not lines:
        sys.stderr.write("check_prometheus: empty input\n")
        return 1
    if lines[-1].strip() != "# EOF":
        sys.stderr.write(
            "check_prometheus: missing terminal '# EOF' (last line: %r)\n"
            % lines[-1]
        )
        return 1

    helped = {}  # family -> help text
    typed = {}  # family -> type
    closed = set()  # families whose sample block has ended
    current = None  # family currently emitting samples
    # histogram accumulation for the current family
    hist = None  # dict(bounds=[], counts=[], inf=None, sum=None, count=None)
    samples = {}  # full sample name (with labels) -> value, for dup check

    def close_family(lineno):
        nonlocal current, hist
        if current is None:
            return
        if typed.get(current) == "histogram":
            if hist is None or hist["inf"] is None:
                fail(lineno, current, "histogram missing +Inf bucket")
            if hist["count"] is None or hist["sum"] is None:
                fail(lineno, current, "histogram missing _sum or _count")
            if hist["inf"] != hist["count"]:
                fail(
                    lineno,
                    current,
                    "+Inf bucket (%g) != _count (%g)"
                    % (hist["inf"], hist["count"]),
                )
        closed.add(current)
        current = None
        hist = None

    for lineno, line in enumerate(lines, 1):
        if line.strip() == "# EOF":
            if lineno != len(lines):
                fail(lineno, line, "'# EOF' before end of input")
            close_family(lineno)
            continue
        if not line or line.isspace():
            fail(lineno, line, "blank line inside exposition")
        if line.startswith("#"):
            fields = line.split(" ", 3)
            if len(fields) < 3 or fields[0] != "#":
                fail(lineno, line, "malformed comment/meta line")
            kind, family = fields[1], fields[2]
            if kind not in ("HELP", "TYPE"):
                fail(lineno, line, "unknown meta keyword %r" % kind)
            if not NAME_RE.fullmatch(family):
                fail(lineno, line, "bad family name %r" % family)
            if family in closed:
                fail(lineno, line, "family %r re-opened" % family)
            if kind == "HELP":
                if family in helped:
                    fail(lineno, line, "duplicate HELP for %r" % family)
                helped[family] = fields[3] if len(fields) > 3 else ""
            else:
                if family in typed:
                    fail(lineno, line, "duplicate TYPE for %r" % family)
                if len(fields) < 4 or fields[3] not in KNOWN_TYPES:
                    fail(lineno, line, "unknown metric type")
                if family not in helped:
                    fail(lineno, line, "TYPE before HELP for %r" % family)
                typed[family] = fields[3]
                if fields[3] == "counter" and not family.endswith("_total"):
                    fail(
                        lineno, line, "counter family must end in _total"
                    )
            close_family(lineno)
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, "unparsable sample line")
        name, label_block, value_token = m.groups()
        value = parse_value(value_token)
        if value is None:
            fail(lineno, line, "unparsable value %r" % value_token)
        labels = parse_labels(label_block, lineno, line) if label_block else {}
        family = name if typed.get(name) is not None else family_of(name)
        if family not in typed:
            fail(lineno, line, "sample before TYPE for %r" % family)
        if family in closed:
            fail(lineno, line, "family %r re-opened by sample" % family)
        if current is not None and family != current:
            close_family(lineno)
        current = family

        key = name + (label_block or "")
        if key in samples:
            fail(lineno, line, "duplicate sample %r" % key)
        samples[key] = value

        if typed[family] == "histogram":
            if hist is None:
                hist = {
                    "bounds": [],
                    "counts": [],
                    "inf": None,
                    "sum": None,
                    "count": None,
                }
            if name.endswith("_bucket"):
                if "le" not in labels:
                    fail(lineno, line, "_bucket without le label")
                if labels["le"] == "+Inf":
                    hist["inf"] = value
                else:
                    bound = parse_value(labels["le"])
                    if bound is None:
                        fail(lineno, line, "bad le bound")
                    if hist["inf"] is not None:
                        fail(lineno, line, "finite bucket after +Inf")
                    if hist["bounds"] and bound <= hist["bounds"][-1]:
                        fail(lineno, line, "le bounds not increasing")
                    if hist["counts"] and value < hist["counts"][-1]:
                        fail(
                            lineno, line, "cumulative bucket count decreased"
                        )
                    hist["bounds"].append(bound)
                    hist["counts"].append(value)
                if hist["counts"] and hist["inf"] is not None:
                    if hist["inf"] < hist["counts"][-1]:
                        fail(lineno, line, "+Inf bucket below last bucket")
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = value
            else:
                fail(lineno, line, "bare sample in histogram family")
        else:
            if typed[family] == "counter" and value < 0:
                fail(lineno, line, "negative counter")

    print(
        "check_prometheus: OK (%d families, %d samples)"
        % (len(typed), len(samples))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
