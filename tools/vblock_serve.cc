// Copyright (c) the vblock authors. Licensed under the MIT license.
//
// vblock_serve — stdin/stdout REPL over the in-process query service.
//
// Reads one protocol command per line (service/protocol.h), writes one
// response line per command; blank lines and '#' comments are echoed
// nowhere, so a scripted session pipes cleanly:
//
//   $ ./vblock_serve < session.txt
//
// Flags:
//   --threads N      service worker threads          (default 2)
//   --max-queue N    admission queue bound           (default 256)
//   --cache-mb N     warm-pool cache budget in MiB   (default 256)
//   --echo           echo each command line prefixed with "> " (useful for
//                    human-readable transcripts)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "service/protocol.h"

namespace {

bool ParseFlagValue(int argc, char** argv, int* i, const char* flag,
                    uint64_t* out) {
  if (std::strcmp(argv[*i], flag) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", flag);
    std::exit(2);
  }
  if (!vblock::ParseUint64(argv[++*i], out)) {
    std::fprintf(stderr, "malformed value for %s\n", flag);
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  vblock::ServiceOptions options;
  uint64_t threads = 2, max_queue = 256, cache_mb = 256;
  bool echo = false;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlagValue(argc, argv, &i, "--threads", &threads) ||
        ParseFlagValue(argc, argv, &i, "--max-queue", &max_queue) ||
        ParseFlagValue(argc, argv, &i, "--cache-mb", &cache_mb)) {
      continue;
    }
    if (std::strcmp(argv[i], "--echo") == 0) {
      echo = true;
      continue;
    }
    std::fprintf(stderr,
                 "usage: vblock_serve [--threads N] [--max-queue N] "
                 "[--cache-mb N] [--echo]\n");
    return 2;
  }
  options.num_threads = static_cast<uint32_t>(threads);
  options.max_queue = static_cast<uint32_t>(max_queue);
  options.cache.max_bytes = cache_mb << 20;

  vblock::ServiceSession session(options);
  std::string line;
  while (!session.done() && std::getline(std::cin, line)) {
    if (echo) std::cout << "> " << line << "\n";
    const std::string response = session.Execute(line);
    if (!response.empty()) std::cout << response << "\n" << std::flush;
  }
  return 0;
}
