// Copyright (c) the vblock authors. Licensed under the MIT license.
//
// vblock_serve — the query service behind a stdin/stdout REPL or a TCP
// listener.
//
// Default mode reads one protocol command per line (service/protocol.h)
// from stdin and writes one response line per command; blank lines and
// '#' comments are echoed nowhere, so a scripted session pipes cleanly:
//
//   $ ./vblock_serve < session.txt
//
// With --tcp the same protocol is served over a loopback TCP listener
// (net/tcp_server.h) to any number of concurrent clients; SIGTERM/SIGINT
// drain gracefully (in-flight commands finish, responses flush, exit 0).
// The line "LISTENING <port>" is printed to stdout once the socket is
// bound, so scripts using --tcp 0 (ephemeral port) can discover it.
//
// Flags:
//   --threads N      service worker threads          (default 2)
//   --max-queue N    admission queue bound           (default 256)
//   --cache-mb N     warm-pool cache budget in MiB   (default 256)
//   --shards N       pool-cache shard count          (default 1 stdin,
//                                                     4 with --tcp)
//   --slow-ms N      slow-query log threshold in ms  (default 0 = off);
//                    requests at/over it emit one "slow_query ..." line
//                    (trace id included) on stderr
//   --tcp PORT       serve TCP on PORT (0 = ephemeral) instead of stdin
//   --bind ADDR      TCP bind address                (default 127.0.0.1)
//   --max-conns N    concurrent TCP connection cap   (default 4096)
//   --echo           stdin mode: echo each command line prefixed "> "

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "net/line_client.h"
#include "net/tcp_server.h"
#include "service/protocol.h"

namespace {

vblock::TcpServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

bool ParseFlagValue(int argc, char** argv, int* i, const char* flag,
                    uint64_t* out) {
  if (std::strcmp(argv[*i], flag) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", flag);
    std::exit(2);
  }
  if (!vblock::ParseUint64(argv[++*i], out)) {
    std::fprintf(stderr, "malformed value for %s\n", flag);
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  vblock::ServiceOptions options;
  uint64_t threads = 2, max_queue = 256, cache_mb = 256;
  uint64_t shards = 0;  // 0 = per-mode default
  uint64_t slow_ms = 0;
  uint64_t tcp_port = 0, max_conns = 4096;
  bool tcp = false;
  bool echo = false;
  std::string bind_address = "127.0.0.1";
  for (int i = 1; i < argc; ++i) {
    if (ParseFlagValue(argc, argv, &i, "--threads", &threads) ||
        ParseFlagValue(argc, argv, &i, "--max-queue", &max_queue) ||
        ParseFlagValue(argc, argv, &i, "--cache-mb", &cache_mb) ||
        ParseFlagValue(argc, argv, &i, "--shards", &shards) ||
        ParseFlagValue(argc, argv, &i, "--slow-ms", &slow_ms) ||
        ParseFlagValue(argc, argv, &i, "--max-conns", &max_conns)) {
      continue;
    }
    if (std::strcmp(argv[i], "--tcp") == 0) {
      tcp = true;
      if (ParseFlagValue(argc, argv, &i, "--tcp", &tcp_port)) continue;
    }
    if (std::strcmp(argv[i], "--bind") == 0 && i + 1 < argc) {
      bind_address = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--echo") == 0) {
      echo = true;
      continue;
    }
    std::fprintf(stderr,
                 "usage: vblock_serve [--threads N] [--max-queue N] "
                 "[--cache-mb N] [--shards N] [--slow-ms N] [--echo]\n"
                 "                    [--tcp PORT] [--bind ADDR] "
                 "[--max-conns N]\n");
    return 2;
  }
  options.num_threads = static_cast<uint32_t>(threads);
  options.max_queue = static_cast<uint32_t>(max_queue);
  options.cache.max_bytes = cache_mb << 20;
  options.cache.shards =
      shards != 0 ? static_cast<uint32_t>(shards) : (tcp ? 4 : 1);
  options.slow_query_ms = slow_ms;  // default sink: stderr

  if (!tcp) {
    vblock::ServiceSession session(options);
    return vblock::RunRepl(std::cin, std::cout, &session, echo);
  }

  vblock::TryRaiseFdLimit(max_conns + 64);
  vblock::GraphRegistry registry;
  vblock::QueryService service(&registry, options);
  vblock::TcpServerOptions server_options;
  server_options.bind_address = bind_address;
  server_options.port = static_cast<uint16_t>(tcp_port);
  server_options.max_connections = static_cast<uint32_t>(max_conns);
  vblock::TcpServer server(&registry, &service, server_options);
  vblock::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "vblock_serve: %s\n",
                 started.message().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::cout << "LISTENING " << server.port() << "\n" << std::flush;
  const int rc = server.Run();
  g_server = nullptr;
  return rc;
}
