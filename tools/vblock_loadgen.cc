// Copyright (c) the vblock authors. Licensed under the MIT license.
//
// vblock_loadgen — TCP client for vblock_serve: transcript replay and
// closed-loop load generation.
//
// Replay mode pipes a whole protocol script through one connection and
// prints the server's byte-exact response stream (the CI smoke diffs it
// against tools/smoke_expected.txt):
//
//   $ ./vblock_loadgen --port 7471 --script tools/smoke_session.txt
//   $ cat session.txt | ./vblock_loadgen --port 7471 --script -
//
// Load mode runs N closed-loop connections (one request in flight each)
// for a wall-clock window and emits one JSON object of QPS + latency
// percentiles:
//
//   $ ./vblock_loadgen --port 7471 --connections 256 --duration 10
//       --setup 'LOAD g GEN EmailCore' --request 'SOLVE g SEEDS 1 ALG od'
//
// --setup/--request may repeat; requests round-robin per connection.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "net/load_gen.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: vblock_loadgen --port N [--host ADDR]\n"
      "         --script FILE|-        replay a session, print transcript\n"
      "       | --connections N --duration S [--setup LINE]...\n"
      "         [--request LINE]...    closed-loop load, print JSON\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string script_path;
  bool replay = false;
  uint64_t port = 0, connections = 1;
  double duration = 5.0;
  std::vector<std::string> setup_lines;
  std::vector<std::string> request_lines;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--host") {
      host = value();
    } else if (flag == "--port") {
      if (!vblock::ParseUint64(value(), &port) || port == 0 ||
          port > 65535) {
        std::fprintf(stderr, "malformed --port\n");
        return 2;
      }
    } else if (flag == "--script") {
      replay = true;
      script_path = value();
    } else if (flag == "--connections") {
      if (!vblock::ParseUint64(value(), &connections) ||
          connections == 0) {
        std::fprintf(stderr, "malformed --connections\n");
        return 2;
      }
    } else if (flag == "--duration") {
      if (!vblock::ParseDouble(value(), &duration) || duration <= 0) {
        std::fprintf(stderr, "malformed --duration\n");
        return 2;
      }
    } else if (flag == "--setup") {
      setup_lines.push_back(value());
    } else if (flag == "--request") {
      request_lines.push_back(value());
    } else {
      return Usage();
    }
  }
  if (port == 0) return Usage();

  if (replay) {
    std::string script;
    if (script_path == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      script = buffer.str();
    } else {
      std::ifstream in(script_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      script = buffer.str();
    }
    vblock::Result<std::string> transcript = vblock::ReplayScript(
        host, static_cast<uint16_t>(port), script);
    if (!transcript.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   transcript.status().message().c_str());
      return 1;
    }
    std::cout << *transcript << std::flush;
    return 0;
  }

  vblock::LoadGenOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  options.connections = static_cast<uint32_t>(connections);
  options.duration_seconds = duration;
  options.setup_lines = setup_lines;
  options.request_lines = request_lines.empty()
                              ? std::vector<std::string>{"STATS"}
                              : request_lines;
  vblock::Result<vblock::LoadGenReport> report =
      vblock::RunClosedLoadGen(options);
  if (!report.ok()) {
    std::fprintf(stderr, "load generation failed: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  std::printf(
      "{\"connections\": %llu, \"connected\": %llu, \"requests\": %llu, "
      "\"errors\": %llu, \"seconds\": %.3f, \"qps\": %.1f, "
      "\"lat_mean_ms\": %.3f, \"lat_p50_ms\": %.3f, \"lat_p90_ms\": %.3f, "
      "\"lat_p99_ms\": %.3f, \"lat_max_ms\": %.3f}\n",
      static_cast<unsigned long long>(connections),
      static_cast<unsigned long long>(report->connected),
      static_cast<unsigned long long>(report->requests),
      static_cast<unsigned long long>(report->errors), report->seconds,
      report->qps, report->latency_mean_ms, report->latency_p50_ms,
      report->latency_p90_ms, report->latency_p99_ms,
      report->latency_max_ms);
  return 0;
}
