#!/usr/bin/env python3
"""Committed perf-trajectory files: append bench runs, diff against history.

The repo keeps one BENCH_<area>.json per bench area at the repo root
(sampling / solver / service). Schema — per-metric history lists:

    {
      "<metric>": [ {"pr": 7, "value": 3.42, "unit": "x"}, ... ],
      ...
    }

Every tracked metric is a dimensionless ratio (speedup vs an in-run
baseline), so trajectories survive machine changes: a shared CI runner and
a laptop agree on ratios far better than on nanoseconds.

Usage:
    bench_trajectory.py check  BENCH_sampling.json bench_skip_sampling.json
    bench_trajectory.py append BENCH_sampling.json bench_skip_sampling.json --pr 7

`check` compares a fresh bench run against each metric's last committed
entry and exits 1 if any ratio regressed by more than --threshold (default
15%) — wire it through `continue-on-error` in CI to make that advisory.
`append` adds the run as a new history entry (deduping the PR number) and
rewrites the trajectory file; commit the result.

The metric extractors below understand the JSON emitted by
bench_skip_sampling, bench_sample_pool, bench_batch_solver,
bench_service_throughput, bench_dynamic_graph, and bench_observability,
keyed by the "bench" field each one emits.
"""

import argparse
import json
import sys


def _skip_sampling_metrics(run):
    out = {}
    for name, inst in run["instances"].items():
        for direction in ("forward", "rr"):
            d = inst[direction]
            base = f"{name}_{direction}"
            # Ratios vs the per-edge baseline measured in the same process:
            # machine-portable, and a kernel that slows down shows up as a
            # falling ratio even if the runner got faster.
            out[f"{base}_skip_speedup"] = d["speedup"]
            out[f"{base}_batched_speedup"] = d["speedup_batched"]
    return out


def _sample_pool_metrics(run):
    return {"pooled_vs_resample_speedup": run["speedup_pooled_vs_resample_path"]}


def _batch_solver_metrics(run):
    return {"batch_vs_sequential_speedup": run["speedup_batch_vs_sequential"]}


def _service_throughput_metrics(run):
    return {"warm_vs_cold_speedup": run["speedup_warm_vs_cold"]}


def _dynamic_metrics(run):
    # Both dimensionless: migrate-arm wall time vs the rebuild arm replaying
    # the identical delta stream, and the fraction of post-update solves the
    # migrated pools answered warm (1.0 = every update carried its pools).
    return {
        "migrate_vs_rebuild_speedup": run["speedup_migrate_vs_rebuild"],
        "warm_hit_rate": run["warm_hit_rate"],
    }


def _observability_metrics(run):
    # The bench reports overhead ratios (lower = better); the trajectory
    # tracks their inverses so that, like every other metric here, a
    # falling value means a regression — instrumentation creep on the
    # trace-off hot path or heavier span recording when tracing is on.
    off = run["trace_off_overhead_ratio"]
    on = run["trace_on_overhead_ratio"]
    return {
        "trace_off_efficiency": 1.0 / off if off else 0.0,
        "trace_on_efficiency": 1.0 / on if on else 0.0,
    }


EXTRACTORS = {
    "skip_sampling": _skip_sampling_metrics,
    "sample_pool": _sample_pool_metrics,
    "batch_solver": _batch_solver_metrics,
    "service_throughput": _service_throughput_metrics,
    "dynamic_graph": _dynamic_metrics,
    "observability": _observability_metrics,
}

UNIT = "x"  # every tracked metric is a speedup ratio


def extract(run_path):
    try:
        with open(run_path) as f:
            run = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read bench run {run_path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: bench run {run_path} is not valid JSON: {e}")
    if not isinstance(run, dict):
        sys.exit(f"error: bench run {run_path} must be a JSON object")
    bench = run.get("bench")
    if bench not in EXTRACTORS:
        sys.exit(f"error: unknown bench kind {bench!r} in {run_path} "
                 f"(known: {', '.join(sorted(EXTRACTORS))})")
    try:
        metrics = EXTRACTORS[bench](run)
    except (KeyError, TypeError) as e:
        sys.exit(f"error: bench run {run_path} is missing a field the "
                 f"{bench!r} extractor needs: {e}")
    bad = [k for k, v in metrics.items() if not isinstance(v, (int, float))]
    if bad:
        sys.exit(f"error: non-numeric metric(s) in {run_path}: "
                 f"{', '.join(sorted(bad))}")
    return metrics


def load_trajectory(path):
    try:
        with open(path) as f:
            trajectory = json.load(f)
    except FileNotFoundError:
        return {}
    except json.JSONDecodeError as e:
        sys.exit(f"error: trajectory {path} is not valid JSON: {e}")
    if not isinstance(trajectory, dict):
        sys.exit(f"error: trajectory {path} must be a JSON object of "
                 "per-metric history lists")
    return trajectory


def cmd_check(args):
    trajectory = load_trajectory(args.trajectory)
    metrics = extract(args.run)
    regressions = []
    for name, value in sorted(metrics.items()):
        history = trajectory.get(name)
        if not history:
            print(f"  {name}: {value:.3f}{UNIT} (no history — new metric)")
            continue
        last = history[-1]
        ratio = value / last["value"] if last["value"] else float("inf")
        marker = ""
        if ratio < 1.0 - args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, last["value"], value))
        print(f"  {name}: {value:.3f}{UNIT} vs PR {last['pr']} "
              f"{last['value']:.3f}{UNIT} ({(ratio - 1) * 100:+.1f}%){marker}")
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%} vs the committed trajectory:")
        for name, old, new in regressions:
            print(f"  {name}: {old:.3f} -> {new:.3f}")
        return 1
    print("\ntrajectory check passed")
    return 0


def cmd_append(args):
    trajectory = load_trajectory(args.trajectory)
    metrics = extract(args.run)
    for name, value in sorted(metrics.items()):
        history = trajectory.setdefault(name, [])
        # Re-appending for the same PR replaces the entry (re-runs happen).
        trajectory[name] = [e for e in history if e["pr"] != args.pr]
        trajectory[name].append(
            {"pr": args.pr, "value": round(value, 4), "unit": UNIT})
    with open(args.trajectory, "w") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"appended {len(metrics)} metric(s) for PR {args.pr} "
          f"to {args.trajectory}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="diff a run against the trajectory")
    check.add_argument("trajectory", help="committed BENCH_*.json file")
    check.add_argument("run", help="JSON emitted by a bench binary")
    check.add_argument("--threshold", type=float, default=0.15,
                       help="relative regression that fails the check "
                            "(default 0.15)")

    append = sub.add_parser("append", help="append a run to the trajectory")
    append.add_argument("trajectory", help="committed BENCH_*.json file")
    append.add_argument("run", help="JSON emitted by a bench binary")
    append.add_argument("--pr", type=int, required=True,
                        help="PR number recorded with the entry")

    args = parser.parse_args()
    if args.command == "check":
        sys.exit(cmd_check(args))
    sys.exit(cmd_append(args))


if __name__ == "__main__":
    main()
