// Scenario: link interdiction — removing connections instead of accounts.
//
// Platforms sometimes cannot suspend users (legal thresholds, public
// figures) but can down-rank or sever *connections*. The paper's related
// work (Kimura et al.) studies exactly this edge-blocking variant; the
// vblock extension solves it with the same dominator-tree machinery on an
// edge-split graph. This example contrasts the two intervention types at
// equal budgets and shows the cascade timeline before/after.
//
//   $ ./examples/link_interdiction

#include <cstdio>
#include <iostream>

#include "vblock.h"

int main() {
  vblock::Graph g = vblock::WithWeightedCascade(
      vblock::GenerateBarabasiAlbert(1200, 4, /*seed=*/31));
  const std::vector<vblock::VertexId> sources = {5, 250, 700};
  std::printf("network: n=%u, m=%llu, %zu misinformation sources\n",
              g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()),
              sources.size());

  vblock::EvaluationOptions eval;
  eval.mc_rounds = 40000;
  const double baseline = vblock::EvaluateSpread(g, sources, {}, eval);
  std::printf("no intervention: %.2f expected reach\n\n", baseline);

  vblock::TablePrinter table({"budget", "block vertices (GR)",
                              "block edges (greedy)", "edges removed"});
  std::vector<vblock::Edge> last_edges;
  for (uint32_t budget : {5u, 10u, 20u, 40u}) {
    // Vertex blocking: GreedyReplace.
    vblock::SolverOptions vopts;
    vopts.algorithm = vblock::Algorithm::kGreedyReplace;
    vopts.budget = budget;
    vopts.theta = 3000;
    vopts.seed = 7;
    vopts.threads = 2;
    auto vertex_result = vblock::SolveImin(g, sources, vopts);
    VBLOCK_CHECK(vertex_result.ok());
    const double vertex_spread =
        vblock::EvaluateSpread(g, sources, vertex_result->blockers, eval);

    // Edge blocking: greedy interdiction of single links.
    vblock::EdgeBlockingOptions eopts;
    eopts.budget = budget;
    eopts.theta = 3000;
    eopts.seed = 7;
    eopts.threads = 2;
    auto edge_result = vblock::GreedyEdgeBlocking(g, sources, eopts);
    vblock::Graph cut = vblock::RemoveEdges(g, edge_result.blocked_edges);
    const double edge_spread = vblock::EvaluateSpread(cut, sources, {}, eval);
    last_edges = edge_result.blocked_edges;

    table.AddRow({std::to_string(budget),
                  vblock::FormatDouble(vertex_spread, 5),
                  vblock::FormatDouble(edge_spread, 5),
                  std::to_string(edge_result.blocked_edges.size())});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: one blocked vertex removes ALL its edges, so vertex\n"
      "blocking dominates at equal budget — the premium the paper's\n"
      "problem places on choosing vertices well.\n\n");

  // Cascade timeline with and without the last interdiction set.
  vblock::TimelineOptions topts;
  topts.rounds = 20000;
  topts.max_steps = 8;
  auto before = vblock::ExpectedActivationsPerStep(g, sources, topts);
  vblock::Graph cut = vblock::RemoveEdges(g, last_edges);
  auto after = vblock::ExpectedActivationsPerStep(cut, sources, topts);
  std::printf("cascade timeline (expected new activations per step):\n");
  std::printf("  step:      ");
  for (size_t t = 0; t < before.size(); ++t) std::printf("%8zu", t);
  std::printf("\n  untouched: ");
  for (double x : before) std::printf("%8.2f", x);
  std::printf("\n  interdicted:");
  for (size_t t = 0; t < before.size(); ++t) {
    std::printf("%8.2f", t < after.size() ? after[t] : 0.0);
  }
  std::printf("\n");
  return 0;
}
