// Scenario: the paper's §V-E extension — IMIN under the triggering model,
// here instantiated as Linear Threshold (LT).
//
// The triggering framework replaces the IC per-edge coins with per-vertex
// triggering sets; AdvancedGreedy / GreedyReplace run unchanged on those
// samples. Weighted-cascade weights (p = 1/din) are a valid LT weighting
// (they sum to exactly 1 per vertex), so the same graph can be diffused
// under both semantics and the blocker quality compared.
//
//   $ ./examples/triggering_extension

#include <cstdio>
#include <iostream>

#include "vblock.h"

int main() {
  vblock::Graph g = vblock::WithWeightedCascade(
      vblock::GenerateBarabasiAlbert(1500, 4, /*seed=*/7));
  std::printf("graph: n=%u, m=%llu, WC weights (valid LT weighting)\n\n",
              g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));

  const std::vector<vblock::VertexId> seeds = {3, 99, 512};

  // The triggering machinery runs on the unified single-seed instance.
  vblock::UnifiedInstance inst = vblock::UnifySeeds(g, seeds);
  // NOTE: the super-seed edges use noisy-or probabilities, which can push a
  // vertex's in-weight sum slightly above 1; renormalize for LT validity.
  vblock::GraphBuilder fix;
  fix.ReserveVertices(inst.graph.NumVertices());
  for (vblock::VertexId v = 0; v < inst.graph.NumVertices(); ++v) {
    double sum = 0;
    for (double w : inst.graph.InProbabilities(v)) sum += w;
    const double scale = sum > 1.0 ? 1.0 / sum : 1.0;
    auto sources = inst.graph.InNeighbors(v);
    auto weights = inst.graph.InProbabilities(v);
    for (size_t k = 0; k < sources.size(); ++k) {
      fix.AddEdge(sources[k], v, weights[k] * scale);
    }
  }
  auto normalized = fix.Build();
  VBLOCK_CHECK(normalized.ok());
  vblock::Graph lt_graph = std::move(normalized.value());

  vblock::LtTriggeringModel lt(lt_graph);

  // Baseline spread under LT (no blockers).
  const double before = vblock::EstimateTriggeringSpread(
      lt_graph, lt, {inst.root}, /*rounds=*/30000, /*seed=*/5);
  std::printf("LT spread without blocking: %.2f\n", before);

  vblock::TablePrinter table(
      {"b", "AG(LT) spread", "GR(LT) spread", "GR(IC-sampling) spread"});
  for (uint32_t budget : {5u, 10u, 20u}) {
    // AG and GR with triggering-model sampling (the §V-E extension).
    vblock::AdvancedGreedyOptions ag;
    ag.budget = budget;
    ag.theta = 4000;
    ag.seed = 13;
    ag.triggering_model = &lt;
    auto ag_sel = vblock::AdvancedGreedy(lt_graph, inst.root, ag);

    vblock::GreedyReplaceOptions gr;
    gr.budget = budget;
    gr.theta = 4000;
    gr.seed = 13;
    gr.triggering_model = &lt;
    auto gr_sel = vblock::GreedyReplace(lt_graph, inst.root, gr);

    // Mis-specified control: choose blockers with IC sampling semantics,
    // then evaluate them under LT — quantifies what §V-E's native
    // triggering support buys.
    vblock::GreedyReplaceOptions ic;
    ic.budget = budget;
    ic.theta = 4000;
    ic.seed = 13;
    auto ic_sel = vblock::GreedyReplace(lt_graph, inst.root, ic);

    auto lt_eval = [&](const std::vector<vblock::VertexId>& blockers) {
      vblock::VertexMask mask(lt_graph.NumVertices());
      for (auto b : blockers) mask.Set(b);
      return vblock::EstimateTriggeringSpread(lt_graph, lt, {inst.root},
                                              30000, 5, &mask);
    };
    table.AddRow({std::to_string(budget),
                  vblock::FormatDouble(lt_eval(ag_sel.blockers), 5),
                  vblock::FormatDouble(lt_eval(gr_sel.blockers), 5),
                  vblock::FormatDouble(lt_eval(ic_sel.blockers), 5)});
  }
  table.Print(std::cout);
  std::printf("\nReading: AG/GR with native LT sampling minimize the LT\n"
              "spread; IC-sampled blockers remain decent here because WC\n"
              "weights make the two models behave similarly.\n");
  return 0;
}
