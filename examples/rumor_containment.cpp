// Scenario: rumor containment on a social network (the paper's motivating
// application — §I cites rumor cascades like the White House explosion
// hoax).
//
// A Facebook-like social graph is generated; ten accounts start spreading
// a rumor; the platform can suspend (block) a limited number of accounts.
// The example compares all blocker-selection strategies across budgets and
// reports how much of the cascade each one prevents.
//
//   $ ./examples/rumor_containment [n_vertices]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "vblock.h"

int main(int argc, char** argv) {
  const vblock::VertexId n =
      argc > 1 ? static_cast<vblock::VertexId>(std::atoi(argv[1])) : 2000;

  // Facebook-like: preferential attachment + weighted-cascade influence.
  vblock::Graph g = vblock::WithWeightedCascade(
      vblock::GenerateBarabasiAlbert(n, 5, /*seed=*/2023));
  std::printf("social network: n=%u accounts, m=%llu follow edges\n",
              g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));

  // Ten rumor sources, picked among active accounts.
  std::vector<vblock::VertexId> sources;
  for (vblock::VertexId v = 0; sources.size() < 10 && v < n; v += 97) {
    if (g.OutDegree(v) > 0) sources.push_back(v);
  }

  vblock::EvaluationOptions eval;
  eval.mc_rounds = 50000;
  const double unchecked = vblock::EvaluateSpread(g, sources, {}, eval);
  std::printf("unchecked rumor reaches %.1f accounts in expectation\n\n",
              unchecked);

  vblock::TablePrinter table(
      {"suspensions", "RA", "OD", "PR", "AG", "GR", "GR saves"});
  for (uint32_t budget : {10u, 20u, 40u, 80u}) {
    std::vector<std::string> row = {std::to_string(budget)};
    double gr_spread = unchecked;
    for (auto algo :
         {vblock::Algorithm::kRandom, vblock::Algorithm::kOutDegree,
          vblock::Algorithm::kPageRank, vblock::Algorithm::kAdvancedGreedy,
          vblock::Algorithm::kGreedyReplace}) {
      vblock::SolverOptions opts;
      opts.algorithm = algo;
      opts.budget = budget;
      opts.theta = 4000;
      opts.seed = 11;
      opts.threads = 2;
      auto result = vblock::SolveImin(g, sources, opts);
      VBLOCK_CHECK(result.ok());
      double spread = vblock::EvaluateSpread(g, sources, result->blockers, eval);
      if (algo == vblock::Algorithm::kGreedyReplace) gr_spread = spread;
      row.push_back(vblock::FormatDouble(spread, 5));
    }
    row.push_back(
        vblock::FormatDouble(100.0 * (unchecked - gr_spread) /
                                 std::max(1.0, unchecked - 10.0),
                             4) +
        "% of preventable");
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: sources themselves always count (floor %zu); GR should\n"
      "prevent the largest share of the preventable cascade at every "
      "budget.\n",
      sources.size());
  return 0;
}
