// CLI runner for real SNAP datasets.
//
// The bench harness substitutes synthetic stand-ins because this build
// environment is offline; when you have the actual SNAP files
// (http://snap.stanford.edu), point this tool at one to run the real
// experiment end to end:
//
//   $ ./examples/snap_runner <edge-list> [--undirected] [--model tr|wc]
//         [--algo ra|od|pr|bg|ag|gr] [--budget B] [--seeds K] [--theta T]
//
// Example (paper setup, Wiki-Vote):
//   $ ./examples/snap_runner wiki-Vote.txt --model tr --algo gr --budget 20

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "vblock.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <edge-list> [--undirected] [--model tr|wc] "
               "[--algo ra|od|pr|bg|ag|gr] [--budget B] [--seeds K] "
               "[--theta T]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  std::string path = argv[1];
  bool undirected = false;
  std::string model = "tr";
  std::string algo_name = "gr";
  uint32_t budget = 20;
  uint32_t seed_count = 10;
  uint32_t theta = 10000;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--undirected") {
      undirected = true;
    } else if (arg == "--model") {
      model = next();
    } else if (arg == "--algo") {
      algo_name = next();
    } else if (arg == "--budget") {
      budget = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--seeds") {
      seed_count = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--theta") {
      theta = static_cast<uint32_t>(std::atoi(next()));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  vblock::EdgeListReadOptions read_opts;
  read_opts.undirected = undirected;
  auto loaded = vblock::ReadEdgeList(path, read_opts);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  vblock::Graph g = model == "wc"
                        ? vblock::WithWeightedCascade(*loaded)
                        : vblock::WithTrivalency(*loaded, 1);
  std::printf("loaded %s: n=%u m=%llu (%s, %s model)\n", path.c_str(),
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()),
              undirected ? "undirected->bidirectional" : "directed",
              model == "wc" ? "WC" : "TR");

  // Random seeds with out-degree >= 1 (the paper's protocol).
  std::vector<vblock::VertexId> seeds;
  {
    vblock::Rng rng(12345);
    std::vector<vblock::VertexId> pool;
    for (vblock::VertexId v = 0; v < g.NumVertices(); ++v) {
      if (g.OutDegree(v) > 0) pool.push_back(v);
    }
    for (uint32_t i = 0; i < seed_count && i < pool.size(); ++i) {
      size_t j = i + rng.NextBounded(pool.size() - i);
      std::swap(pool[i], pool[j]);
      seeds.push_back(pool[i]);
    }
  }

  vblock::SolverOptions opts;
  opts.budget = budget;
  opts.theta = theta;
  opts.mc_rounds = 10000;
  opts.seed = 1;
  opts.threads = 4;
  if (algo_name == "ra") {
    opts.algorithm = vblock::Algorithm::kRandom;
  } else if (algo_name == "od") {
    opts.algorithm = vblock::Algorithm::kOutDegree;
  } else if (algo_name == "pr") {
    opts.algorithm = vblock::Algorithm::kPageRank;
  } else if (algo_name == "bg") {
    opts.algorithm = vblock::Algorithm::kBaselineGreedy;
  } else if (algo_name == "ag") {
    opts.algorithm = vblock::Algorithm::kAdvancedGreedy;
  } else if (algo_name == "gr") {
    opts.algorithm = vblock::Algorithm::kGreedyReplace;
  } else {
    Usage(argv[0]);
    return 2;
  }

  vblock::Timer timer;
  auto result = vblock::SolveImin(g, seeds, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "solve rejected: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const double solve_seconds = timer.ElapsedSeconds();

  vblock::EvaluationOptions eval;
  eval.mc_rounds = 100000;  // the paper's evaluation setting
  eval.threads = 4;
  const double before = vblock::EvaluateSpread(g, seeds, {}, eval);
  const double after = vblock::EvaluateSpread(g, seeds, result->blockers, eval);

  std::printf("algorithm  : %s (b=%u, theta=%u)\n",
              vblock::AlgorithmName(opts.algorithm), budget, theta);
  std::printf("solve time : %s\n",
              vblock::FormatSeconds(solve_seconds).c_str());
  std::printf("spread     : %.3f -> %.3f (decrease %.3f)\n", before, after,
              before - after);
  std::printf("blockers   :");
  for (vblock::VertexId b : result->blockers) std::printf(" %u", b);
  std::printf("\n");
  return 0;
}
