// Quickstart: the paper's Figure-1 walkthrough, end to end.
//
// Builds the 9-vertex toy graph from the paper, computes the exact expected
// spread (Example 1), scores every candidate blocker with Algorithm 2
// (Example 2), and runs every solver on budgets 1 and 2 (Table III).
//
//   $ ./examples/quickstart

#include <cstdio>

#include "vblock.h"

namespace {

// v1..v9 -> 0..8, edges as reconstructed from the paper's examples.
vblock::Graph BuildPaperFigure1() {
  vblock::GraphBuilder builder;
  builder.AddEdge(0, 1, 1.0);   // v1 -> v2
  builder.AddEdge(0, 3, 1.0);   // v1 -> v4
  builder.AddEdge(1, 4, 1.0);   // v2 -> v5
  builder.AddEdge(3, 4, 1.0);   // v4 -> v5
  builder.AddEdge(4, 2, 1.0);   // v5 -> v3
  builder.AddEdge(4, 5, 1.0);   // v5 -> v6
  builder.AddEdge(4, 8, 1.0);   // v5 -> v9
  builder.AddEdge(4, 7, 0.5);   // v5 -> v8
  builder.AddEdge(8, 7, 0.2);   // v9 -> v8
  builder.AddEdge(7, 6, 0.1);   // v8 -> v7
  auto g = builder.Build();
  VBLOCK_CHECK(g.ok());
  return std::move(g.value());
}

const char* Name(vblock::VertexId v) {
  static const char* kNames[] = {"v1", "v2", "v3", "v4", "v5",
                                 "v6", "v7", "v8", "v9"};
  return kNames[v];
}

}  // namespace

int main() {
  vblock::Graph g = BuildPaperFigure1();
  const std::vector<vblock::VertexId> seeds = {0};  // v1

  std::printf("== Figure-1 toy graph: n=%u, m=%llu, seed v1 ==\n\n",
              g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));

  // --- Example 1: exact expected spread -------------------------------
  auto spread = vblock::ComputeExactSpread(g, seeds);
  VBLOCK_CHECK(spread.ok());
  std::printf("expected spread E({v1},G)            = %.4f (paper: 7.66)\n",
              *spread);
  auto probs = vblock::ComputeExactActivationProbabilities(g, seeds);
  VBLOCK_CHECK(probs.ok());
  std::printf("activation probability of v8         = %.4f (paper: 0.6)\n",
              (*probs)[7]);
  std::printf("activation probability of v7         = %.4f (paper: 0.06)\n\n",
              (*probs)[6]);

  // --- Example 2: Algorithm 2 scores every blocker at once ------------
  std::printf("== Algorithm 2 (exact world enumeration): Δ per blocker ==\n");
  auto deltas = vblock::ComputeSpreadDecreaseExact(g, /*root=*/0);
  VBLOCK_CHECK(deltas.ok());
  for (vblock::VertexId v = 1; v < g.NumVertices(); ++v) {
    std::printf("  Δ(%s) = %.4f\n", Name(v), deltas->delta[v]);
  }
  std::printf("(paper Example 2: Δ(v5)=4.66, Δ(v9)=1.11, Δ(v8)=0.66, "
              "Δ(v7)=0.06, others 1)\n\n");

  // --- Table III: every algorithm on b = 1 and b = 2 ------------------
  std::printf("== Table III: blocker sets and resulting spreads ==\n");
  for (uint32_t budget : {1u, 2u}) {
    std::printf("budget b = %u\n", budget);
    for (auto algo : {vblock::Algorithm::kOutDegree,
                      vblock::Algorithm::kBaselineGreedy,
                      vblock::Algorithm::kAdvancedGreedy,
                      vblock::Algorithm::kGreedyReplace}) {
      vblock::SolverOptions opts;
      opts.algorithm = algo;
      opts.budget = budget;
      opts.theta = 20000;
      opts.mc_rounds = 5000;
      opts.seed = 7;
      auto result = vblock::SolveImin(g, seeds, opts);
      VBLOCK_CHECK(result.ok());

      vblock::VertexMask mask = vblock::VertexMask::FromVertices(
          g.NumVertices(), result->blockers);
      auto blocked_spread = vblock::ComputeExactSpread(g, seeds, &mask);
      VBLOCK_CHECK(blocked_spread.ok());

      std::printf("  %-3s blocks {", vblock::AlgorithmName(algo));
      for (size_t i = 0; i < result->blockers.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", Name(result->blockers[i]));
      }
      std::printf("}  ->  spread %.4f\n", *blocked_spread);
    }
  }
  std::printf("(paper Table III: Greedy b=1 {v5}: 3, b=2 {v5,v2|v4}: 2; "
              "GreedyReplace b=1 {v5}: 3, b=2 {v2,v4}: 1)\n");
  return 0;
}
