// Scenario: targeted immunization on a contact network.
//
// Vertex blocking is exactly the immunization problem: an immunized
// (blocked) person can never be infected, so choosing who to immunize under
// a vaccine budget is IMIN with the infection sources as seeds (the paper's
// §I motivates this with anti-vaccination misinformation amplifying
// outbreaks).
//
// A small-world contact network (Watts-Strogatz) carries a disease with a
// uniform transmission probability; five index cases are known. Compare
// random immunization, degree-targeted immunization (the classic public-
// health heuristic), and GreedyReplace.
//
//   $ ./examples/epidemic_immunization [transmission_probability]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "vblock.h"

int main(int argc, char** argv) {
  const double transmission = argc > 1 ? std::atof(argv[1]) : 0.15;

  vblock::Graph contacts = vblock::WithConstantProbability(
      vblock::GenerateWattsStrogatz(3000, 5, 0.1, /*seed=*/42), transmission);
  std::printf("contact network: n=%u people, m=%llu contacts, "
              "transmission p=%.2f\n",
              contacts.NumVertices(),
              static_cast<unsigned long long>(contacts.NumEdges()),
              transmission);

  const std::vector<vblock::VertexId> index_cases = {17, 421, 1033, 1980,
                                                     2750};
  vblock::EvaluationOptions eval;
  eval.mc_rounds = 40000;
  const double no_action =
      vblock::EvaluateSpread(contacts, index_cases, {}, eval);
  std::printf("without intervention: %.1f expected infections\n\n",
              no_action);

  vblock::TablePrinter table({"vaccine doses", "random", "degree-targeted",
                              "GreedyReplace", "GR infections prevented"});
  for (uint32_t doses : {20u, 50u, 100u, 200u}) {
    auto run = [&](vblock::Algorithm algo) {
      vblock::SolverOptions opts;
      opts.algorithm = algo;
      opts.budget = doses;
      opts.theta = 4000;
      opts.seed = 99;
      opts.threads = 2;
      auto result = vblock::SolveImin(contacts, index_cases, opts);
      VBLOCK_CHECK(result.ok());
      return vblock::EvaluateSpread(contacts, index_cases, result->blockers,
                                    eval);
    };
    const double random = run(vblock::Algorithm::kRandom);
    const double degree = run(vblock::Algorithm::kOutDegree);
    const double gr = run(vblock::Algorithm::kGreedyReplace);
    table.AddRow({std::to_string(doses), vblock::FormatDouble(random, 5),
                  vblock::FormatDouble(degree, 5),
                  vblock::FormatDouble(gr, 5),
                  vblock::FormatDouble(no_action - gr, 5)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: on a small-world network degree targeting is weak (degrees\n"
      "are nearly uniform) while GreedyReplace immunizes the contacts that\n"
      "actually separate the index cases from the rest.\n");
  return 0;
}
