// Copyright (c) the vblock authors. Licensed under the MIT license.
//
// Batch solving demo: answer a whole budget sweep (plus a heuristic
// baseline) over one shared graph with a single SolveIminBatch call. The
// batch groups the queries per algorithm, runs each greedy once at the
// largest budget, and slices the recorded selection trace into bit-exact
// answers for the smaller budgets — compare the amortization counters it
// prints against the 13 standalone solves the same queries would cost.

#include <cstdio>
#include <iostream>
#include <vector>

#include "vblock.h"

int main() {
  const uint64_t seed = 42;
  vblock::Graph g = vblock::WithWeightedCascade(
      vblock::GenerateBarabasiAlbert(2000, 4, seed));
  const std::vector<vblock::VertexId> sources = {0, 1, 2};

  std::printf("== batch budget sweep: n=%u, m=%llu, %zu sources ==\n\n",
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()),
              sources.size());

  vblock::BatchOptions options;
  options.defaults.theta = 2000;
  options.defaults.seed = seed;
  options.defaults.sample_reuse = vblock::SampleReuse::kPrune;
  options.num_threads = 2;

  const std::vector<uint32_t> budgets = {2, 5, 10, 20, 30, 40};
  std::vector<vblock::IminQuery> queries;
  for (auto algo : {vblock::Algorithm::kAdvancedGreedy,
                    vblock::Algorithm::kOutDegree}) {
    for (uint32_t budget : budgets) {
      vblock::IminQuery q;
      q.seeds = sources;
      q.budget = budget;
      q.algorithm = algo;
      queries.push_back(std::move(q));
    }
  }
  // GreedyReplace cannot sweep by trace; a single max-budget query shows it
  // riding along in the same batch.
  vblock::IminQuery gr;
  gr.seeds = sources;
  gr.budget = budgets.back();
  gr.algorithm = vblock::Algorithm::kGreedyReplace;
  queries.push_back(std::move(gr));

  vblock::BatchResult batch = vblock::SolveIminBatch(g, queries, options);

  vblock::EvaluationOptions eval;
  eval.mc_rounds = 20000;
  vblock::TablePrinter table({"budget", "AG spread", "OD spread"});
  for (size_t b = 0; b < budgets.size(); ++b) {
    const auto& ag = batch.queries[b];
    const auto& od = batch.queries[budgets.size() + b];
    VBLOCK_CHECK(ag.status.ok() && od.status.ok());
    table.AddRow(
        {std::to_string(budgets[b]),
         vblock::FormatDouble(
             vblock::EvaluateSpread(g, sources, ag.result.blockers, eval), 5),
         vblock::FormatDouble(
             vblock::EvaluateSpread(g, sources, od.result.blockers, eval),
             5)});
  }
  table.Print(std::cout);

  const auto& gr_answer = batch.queries.back();
  VBLOCK_CHECK(gr_answer.status.ok());
  std::printf("\nGR at budget %u: spread %.4f with %u replacements\n",
              budgets.back(),
              vblock::EvaluateSpread(g, sources, gr_answer.result.blockers,
                                     eval),
              gr_answer.result.stats.replacements);

  std::printf(
      "\n%zu queries answered by %u full solves (%u served from traces, "
      "%u sample-pool builds) in %.2fs\n",
      queries.size(), batch.stats.full_solves, batch.stats.sweep_served,
      batch.stats.engine_builds, batch.stats.seconds);
  return 0;
}
